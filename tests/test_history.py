"""Tests for the artifact history store, trend gate, and HTML report."""

import json
from pathlib import Path

import pytest

from repro.arch.config import SpatulaConfig
from repro.arch.sim import SpatulaSim
from repro.cli import main
from repro.obs import (
    HistoryStore,
    MetricsRegistry,
    RunArtifact,
    check_trend,
    render_history,
    render_trend_series,
    render_html_report,
    run_key,
)
from repro.symbolic import symbolic_factorize
from repro.tasks.plan import build_plan


@pytest.fixture(scope="module")
def sim_artifact(tmp_path_factory):
    from repro.sparse import grid_laplacian_2d

    cfg = SpatulaConfig.tiny()
    symbolic = symbolic_factorize(grid_laplacian_2d(7, seed=3))
    plan = build_plan(symbolic, tile=cfg.tile, supertile=cfg.supertile)
    sim = SpatulaSim(plan, cfg, matrix_name="grid7",
                     metrics=MetricsRegistry(), trace=True)
    report = sim.run()
    return RunArtifact.from_run(report, attribution=sim.attribution())


def regress(artifact: RunArtifact, factor: float = 1.5) -> RunArtifact:
    """Copy of ``artifact`` with cycles degraded by ``factor``."""
    data = json.loads(json.dumps(artifact.to_dict()))
    data["report"]["cycles"] = int(data["report"]["cycles"] * factor)
    data["metrics"]["sim.cycles"] = data["report"]["cycles"]
    bad = RunArtifact(
        matrix=data["matrix"], kind=data["kind"], n=data["n"],
        config=data["config"], report=data["report"],
        metrics=data["metrics"], spans=data["spans"],
        attribution=data.get("attribution"),
        created_at=data["created_at"],
    )
    return bad


class TestHistoryStore:
    def test_add_and_list(self, sim_artifact, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        entry = store.add(sim_artifact)
        assert (tmp_path / "hist" / entry.path).exists()
        assert (tmp_path / "hist" / "index.jsonl").exists()
        entries = store.entries()
        assert len(entries) == 1
        assert entries[0].key == run_key(sim_artifact)
        assert entries[0].metrics["report.cycles"] == \
            sim_artifact.report["cycles"]

    def test_entries_filter_by_key(self, sim_artifact, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        store.add(sim_artifact)
        other = regress(sim_artifact)
        other.matrix = "something-else"
        store.add(other)
        assert len(store.entries()) == 2
        assert len(store.entries(run_key(sim_artifact))) == 1
        assert len(store.keys()) == 2

    def test_roundtrip_artifact(self, sim_artifact, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        entry = store.add(sim_artifact)
        loaded = store.load_artifact(entry)
        assert loaded.report["cycles"] == sim_artifact.report["cycles"]
        assert loaded.attribution is not None

    def test_series(self, sim_artifact, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        store.add(sim_artifact)
        store.add(sim_artifact)
        series = store.series("report.cycles")
        assert [v for _, v in series] == \
            [sim_artifact.report["cycles"]] * 2

    def test_renderers(self, sim_artifact, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        assert "empty history" in render_history(store)
        store.add(sim_artifact)
        assert "1 run(s)" in render_history(store)
        assert "report.cycles" in render_trend_series(store,
                                                      "report.cycles")


class TestTrendCheck:
    def test_no_history_is_not_a_regression(self, sim_artifact, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        report = check_trend(store, sim_artifact)
        assert report.n_history == 0
        assert not report.has_regression

    def test_steady_metrics_pass(self, sim_artifact, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        for _ in range(3):
            store.add(sim_artifact)
        report = check_trend(store, sim_artifact)
        assert report.n_history == 3
        assert not report.has_regression
        assert any(v.name == "report.cycles" for v in report.verdicts)

    def test_injected_regression_detected(self, sim_artifact, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        for _ in range(3):
            store.add(sim_artifact)
        report = check_trend(store, regress(sim_artifact, 1.5))
        assert report.has_regression
        names = {v.name for v in report.regressions}
        assert "report.cycles" in names

    def test_improvement_is_not_a_regression(self, sim_artifact,
                                             tmp_path):
        store = HistoryStore(tmp_path / "hist")
        for _ in range(3):
            store.add(sim_artifact)
        report = check_trend(store, regress(sim_artifact, 0.5))
        assert not report.has_regression

    def test_median_robust_to_one_outlier(self, sim_artifact, tmp_path):
        # One historic spike must not poison the window baseline.
        store = HistoryStore(tmp_path / "hist")
        store.add(sim_artifact)
        store.add(regress(sim_artifact, 4.0))
        store.add(sim_artifact)
        report = check_trend(store, sim_artifact)
        assert not report.has_regression

    def test_window_limits_samples(self, sim_artifact, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        for _ in range(6):
            store.add(sim_artifact)
        report = check_trend(store, sim_artifact, window=2)
        assert report.n_history == 2

    def test_render(self, sim_artifact, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        store.add(sim_artifact)
        text = check_trend(store, regress(sim_artifact, 2.0)).render()
        assert "REGRESSION" in text


class TestHistoryCLI:
    def test_check_exits_nonzero_on_injected_regression(
            self, sim_artifact, tmp_path, capsys):
        # Acceptance criterion: `repro history check` exits non-zero when
        # the history contains the baseline and the artifact regressed.
        hist = tmp_path / "hist"
        good = tmp_path / "good.json"
        bad = tmp_path / "bad.json"
        sim_artifact.save(good)
        regress(sim_artifact, 1.5).save(bad)
        assert main(["history", "add", str(good),
                     "--dir", str(hist)]) == 0
        assert main(["history", "check", str(good),
                     "--dir", str(hist)]) == 0
        assert main(["history", "check", str(bad), "--dir", str(hist),
                     "--no-add"]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out

    def test_list_and_trend(self, sim_artifact, tmp_path, capsys):
        hist = tmp_path / "hist"
        path = tmp_path / "run.json"
        sim_artifact.save(path)
        main(["history", "add", str(path), "--dir", str(hist)])
        assert main(["history", "list", "--dir", str(hist)]) == 0
        assert main(["history", "trend", "--dir", str(hist),
                     "--metric", "report.cycles"]) == 0
        out = capsys.readouterr().out
        assert "report.cycles" in out

    def test_add_without_file_errors(self, tmp_path, capsys):
        assert main(["history", "add", "--dir",
                     str(tmp_path / "h")]) == 1
        assert "needs an artifact file" in capsys.readouterr().err


class TestHtmlReport:
    def test_self_contained_page(self, sim_artifact, tmp_path):
        html = render_html_report(sim_artifact)
        assert html.startswith("<!doctype html>")
        assert "Cycle attribution" in html
        assert "Critical path" in html
        assert "What-if" in html
        assert "<svg" in html           # utilization timeline
        assert "http" not in html.split("</title>")[1]  # no external refs

    def test_trends_section_with_history(self, sim_artifact, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        store.add(sim_artifact)
        store.add(sim_artifact)
        trend = check_trend(store, sim_artifact)
        html = render_html_report(sim_artifact, history=store,
                                  trend=trend)
        assert "Trends" in html
        assert "report.cycles" in html

    def test_handles_artifact_without_attribution(self, sim_artifact):
        bare = RunArtifact(
            matrix=sim_artifact.matrix, kind=sim_artifact.kind,
            n=sim_artifact.n, config=sim_artifact.config,
            report=sim_artifact.report,
        )
        html = render_html_report(bare)
        assert "Cycle attribution" not in html
        assert "Report" in html

    def test_cli_html(self, sim_artifact, tmp_path, capsys):
        src = tmp_path / "run.json"
        out = tmp_path / "report.html"
        hist = tmp_path / "hist"
        sim_artifact.save(src)
        main(["history", "add", str(src), "--dir", str(hist)])
        assert main(["report", str(src), "--html", str(out),
                     "--history", str(hist)]) == 0
        text = out.read_text()
        assert "Cycle attribution" in text


class TestCommittedBaseline:
    BASELINE = (Path(__file__).parent.parent / "benchmarks" / "baselines"
                / "bmwcra_1_0.3_paper.json")

    def test_loads_and_self_diffs_clean(self):
        from repro.obs import diff_artifacts

        art = RunArtifact.load(self.BASELINE)
        assert art.matrix == "suite:bmwcra_1@0.3"
        assert art.attribution is not None
        assert not diff_artifacts(art, art).has_regression

    def test_matches_current_simulator(self, tmp_path):
        # The committed baseline must track the simulator: regenerate the
        # same run and require identical deterministic cycle counts (see
        # benchmarks/baselines/README.md for the regeneration command).
        out = tmp_path / "fresh.json"
        assert main(["simulate", "suite:bmwcra_1@0.3",
                     "--metrics", str(out)]) == 0
        fresh = RunArtifact.load(out)
        baseline = RunArtifact.load(self.BASELINE)
        assert fresh.report["cycles"] == baseline.report["cycles"]


class TestSchemaVersions:
    def test_current_roundtrip_with_attribution(self, sim_artifact,
                                                tmp_path):
        from repro.obs.artifact import SCHEMA_VERSION

        path = tmp_path / "current.json"
        sim_artifact.save(path)
        loaded = RunArtifact.load(path)
        assert loaded.schema_version == SCHEMA_VERSION
        assert loaded.attribution is not None
        acc = loaded.attribution["cycles"]
        assert acc["total_cycles"] == sim_artifact.report["cycles"]

    def test_v2_artifact_loads_without_telemetry(self, sim_artifact,
                                                 tmp_path):
        # v2 artifacts predate the telemetry/profile sections (v3).
        data = sim_artifact.to_dict()
        data.pop("telemetry", None)
        data.pop("profile", None)
        data["schema_version"] = 2
        path = tmp_path / "v2.json"
        path.write_text(json.dumps(data))
        loaded = RunArtifact.load(path)
        assert loaded.schema_version == 2
        assert loaded.attribution is not None
        assert loaded.telemetry is None
        assert loaded.profile is None

    def test_v1_artifact_loads_without_attribution(self, sim_artifact,
                                                   tmp_path):
        data = sim_artifact.to_dict()
        data.pop("attribution")
        data["schema_version"] = 1
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(data))
        loaded = RunArtifact.load(path)
        assert loaded.schema_version == 1
        assert loaded.attribution is None
        assert loaded.telemetry is None
        assert loaded.profile is None
        assert loaded.report["cycles"] == sim_artifact.report["cycles"]

    def test_version_error_names_found_and_supported(self, sim_artifact,
                                                     tmp_path):
        data = sim_artifact.to_dict()
        data["schema_version"] = 99
        path = tmp_path / "v99.json"
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError) as err:
            RunArtifact.load(path)
        message = str(err.value)
        assert "99" in message
        assert "1, 2" in message
