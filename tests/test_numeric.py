"""Tests for dense kernels, multifrontal Cholesky/LU, and triangular
solves (validated against NumPy oracles)."""

import numpy as np
import pytest

from repro.numeric.cholesky import multifrontal_cholesky
from repro.numeric.dense import (
    dense_cholesky,
    dense_lu_nopivot,
    partial_cholesky,
    partial_lu,
    tsolve_lower_inplace,
    tsolve_upper_inplace,
)
from repro.numeric.lu import multifrontal_lu
from repro.numeric.triangular import (
    solve_lower_csc,
    solve_upper_csc,
    solve_upper_csc_direct,
)
from repro.sparse.csc import CSCMatrix
from repro.symbolic import symbolic_factorize


def random_spd_dense(rng, n):
    a = rng.standard_normal((n, n))
    return a @ a.T + n * np.eye(n)


class TestDenseKernels:
    def test_cholesky_matches_numpy(self, rng):
        a = random_spd_dense(rng, 12)
        assert np.allclose(dense_cholesky(a), np.linalg.cholesky(a))

    def test_cholesky_rejects_indefinite(self):
        with pytest.raises(ValueError):
            dense_cholesky(np.array([[1.0, 2.0], [2.0, 1.0]]))

    def test_cholesky_rejects_rectangular(self):
        with pytest.raises(ValueError):
            dense_cholesky(np.ones((2, 3)))

    def test_lu_reconstructs(self, rng):
        a = random_spd_dense(rng, 10) + rng.standard_normal((10, 10))
        lower, upper = dense_lu_nopivot(a)
        assert np.allclose(lower @ upper, a)
        assert np.allclose(np.diag(lower), 1.0)
        assert np.allclose(lower, np.tril(lower))
        assert np.allclose(upper, np.triu(upper))

    def test_lu_zero_pivot_raises(self):
        with pytest.raises(ValueError):
            dense_lu_nopivot(np.array([[0.0, 1.0], [1.0, 0.0]]))

    def test_lu_perturbation_rescues_small_pivot(self):
        a = np.array([[1e-20, 1.0], [1.0, 1.0]])
        lower, upper = dense_lu_nopivot(a, perturb=1e-8)
        assert np.isfinite(lower).all() and np.isfinite(upper).all()

    def test_tsolve_lower(self, rng):
        l11 = np.tril(rng.standard_normal((6, 6))) + 6 * np.eye(6)
        block = rng.standard_normal((4, 6))
        x = tsolve_lower_inplace(block, l11)
        assert np.allclose(x @ l11.T, block)

    def test_tsolve_upper(self, rng):
        l11 = np.tril(rng.standard_normal((5, 5)), -1) + np.eye(5)
        block = rng.standard_normal((5, 7))
        x = tsolve_upper_inplace(block, l11)
        assert np.allclose(l11 @ x, block)

    def test_partial_cholesky_schur(self, rng):
        # After k pivots, the trailing block is the Schur complement.
        n, k = 10, 4
        a = random_spd_dense(rng, n)
        front = a.copy()
        partial_cholesky(front, k)
        a11, a21, a22 = a[:k, :k], a[k:, :k], a[k:, k:]
        schur = a22 - a21 @ np.linalg.inv(a11) @ a21.T
        assert np.allclose(np.tril(front[k:, k:]), np.tril(schur))

    def test_partial_cholesky_full_equals_dense(self, rng):
        a = random_spd_dense(rng, 8)
        front = a.copy()
        partial_cholesky(front, 8)
        assert np.allclose(np.tril(front), np.linalg.cholesky(a))

    def test_partial_lu_schur(self, rng):
        n, k = 9, 3
        a = random_spd_dense(rng, n) + rng.standard_normal((n, n))
        front = a.copy()
        partial_lu(front, k)
        a11, a12 = a[:k, :k], a[:k, k:]
        a21, a22 = a[k:, :k], a[k:, k:]
        schur = a22 - a21 @ np.linalg.inv(a11) @ a12
        assert np.allclose(front[k:, k:], schur)


class TestMultifrontalCholesky:
    @pytest.mark.parametrize("ordering", ["amd", "nd", "rcm", "natural"])
    def test_reconstructs_under_all_orderings(self, ordering, spd_medium):
        sf = symbolic_factorize(spd_medium, kind="cholesky",
                                ordering=ordering)
        factor = multifrontal_cholesky(spd_medium, sf)
        lower = factor.to_csc().to_dense()
        want = spd_medium.permuted(sf.perm).to_dense()
        assert np.allclose(lower @ lower.T, want, atol=1e-10)

    def test_matches_numpy_cholesky(self, spd_small):
        sf = symbolic_factorize(spd_small, kind="cholesky")
        lower = multifrontal_cholesky(spd_small, sf).to_csc().to_dense()
        ref = np.linalg.cholesky(spd_small.permuted(sf.perm).to_dense())
        assert np.allclose(lower, ref, atol=1e-10)

    def test_irregular_matrix(self, spd_irregular):
        sf = symbolic_factorize(spd_irregular, kind="cholesky")
        lower = multifrontal_cholesky(spd_irregular, sf).to_csc().to_dense()
        want = spd_irregular.permuted(sf.perm).to_dense()
        assert np.allclose(lower @ lower.T, want, atol=1e-9)

    def test_amalgamation_does_not_change_values(self, spd_medium):
        tight = symbolic_factorize(spd_medium, relax_small=0, relax_ratio=0.0)
        loose = symbolic_factorize(spd_medium, relax_small=16,
                                   relax_ratio=0.6, force_small=64)
        lt = multifrontal_cholesky(spd_medium, tight).to_csc().to_dense()
        ll = multifrontal_cholesky(spd_medium, loose).to_csc().to_dense()
        # Both must reconstruct; they may differ only by explicit zeros.
        pt = spd_medium.permuted(tight.perm).to_dense()
        pl = spd_medium.permuted(loose.perm).to_dense()
        assert np.allclose(lt @ lt.T, pt, atol=1e-10)
        assert np.allclose(ll @ ll.T, pl, atol=1e-10)

    def test_nnz_accounting(self, spd_medium):
        sf = symbolic_factorize(spd_medium, relax_small=0, relax_ratio=0.0)
        factor = multifrontal_cholesky(spd_medium, sf)
        # Without amalgamation, stored nnz equals predicted fill.
        assert factor.nnz() == sf.factor_nnz

    def test_kind_mismatch_raises(self, spd_small):
        sf = symbolic_factorize(spd_small, kind="lu")
        with pytest.raises(ValueError):
            multifrontal_cholesky(spd_small, sf)


class TestMultifrontalLU:
    @pytest.mark.parametrize("fixture", ["unsym_small", "unsym_random"])
    def test_reconstructs(self, fixture, request):
        matrix = request.getfixturevalue(fixture)
        sf = symbolic_factorize(matrix, kind="lu")
        factors = multifrontal_lu(matrix, sf)
        lower, upper = factors.to_csc()
        want = matrix.permuted(sf.perm).to_dense()
        assert np.allclose(lower.to_dense() @ upper.to_dense(), want,
                           atol=1e-9)

    def test_unit_diagonal_l(self, unsym_small):
        sf = symbolic_factorize(unsym_small, kind="lu")
        lower, _ = multifrontal_lu(unsym_small, sf).to_csc()
        assert np.allclose(np.diag(lower.to_dense()), 1.0)

    def test_no_perturbation_on_dominant_matrix(self, unsym_small):
        sf = symbolic_factorize(unsym_small, kind="lu")
        assert multifrontal_lu(unsym_small, sf).perturbed_pivots == 0

    def test_symmetric_matrix_via_lu(self, spd_small):
        sf = symbolic_factorize(spd_small, kind="lu")
        lower, upper = multifrontal_lu(spd_small, sf).to_csc()
        want = spd_small.permuted(sf.perm).to_dense()
        assert np.allclose(lower.to_dense() @ upper.to_dense(), want,
                           atol=1e-10)

    def test_kind_mismatch_raises(self, unsym_small):
        with pytest.raises(ValueError):
            multifrontal_lu(unsym_small, symbolic_factorize(
                unsym_small.pattern_symmetrized(), kind="cholesky"))


class TestTriangularSolves:
    def test_forward_solve(self, rng):
        lower = np.tril(rng.standard_normal((8, 8))) + 8 * np.eye(8)
        b = rng.standard_normal(8)
        y = solve_lower_csc(CSCMatrix.from_dense(lower), b)
        assert np.allclose(lower @ y, b)

    def test_backward_solve_via_lower(self, rng):
        lower = np.tril(rng.standard_normal((8, 8))) + 8 * np.eye(8)
        b = rng.standard_normal(8)
        x = solve_upper_csc(CSCMatrix.from_dense(lower), b)
        assert np.allclose(lower.T @ x, b)

    def test_unit_diagonal_forward(self, rng):
        lower = np.tril(rng.standard_normal((6, 6)), -1) + np.eye(6)
        b = rng.standard_normal(6)
        y = solve_lower_csc(CSCMatrix.from_dense(lower), b,
                            unit_diagonal=True)
        assert np.allclose(lower @ y, b)

    def test_upper_direct(self, rng):
        upper = np.triu(rng.standard_normal((7, 7))) + 7 * np.eye(7)
        b = rng.standard_normal(7)
        x = solve_upper_csc_direct(CSCMatrix.from_dense(upper), b)
        assert np.allclose(upper @ x, b)

    def test_missing_diagonal_raises(self):
        lower = np.array([[0.0, 0.0], [1.0, 2.0]])
        m = CSCMatrix.from_dense(lower)
        with pytest.raises(ValueError):
            solve_lower_csc(m, np.ones(2))

    def test_dimension_mismatch_raises(self, rng):
        lower = CSCMatrix.from_dense(np.eye(4))
        with pytest.raises(ValueError):
            solve_lower_csc(lower, np.ones(5))
