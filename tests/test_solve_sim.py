"""Tests for the triangular-solve phase model."""

import pytest

from repro.arch.config import SpatulaConfig
from repro.arch.sim import SpatulaSim
from repro.arch.solve import SolveSim, simulate_solve
from repro.sparse import banded_spd, grid_laplacian_3d
from repro.symbolic import symbolic_factorize
from repro.tasks.plan import build_plan


def make_plan(matrix, config, kind="cholesky", **kw):
    symbolic = symbolic_factorize(matrix, kind=kind, **kw)
    return build_plan(symbolic, tile=config.tile,
                      supertile=config.supertile)


class TestSolvePhase:
    def test_runs_and_reports(self, spd_medium, tiny_config):
        plan = make_plan(spd_medium, tiny_config)
        report = simulate_solve(plan, tiny_config)
        assert report.forward_cycles > 0
        assert report.backward_cycles > 0
        assert report.dram_bytes > 0
        assert report.n_supernodes == plan.n_supernodes

    def test_deterministic(self, spd_medium, tiny_config):
        plan = make_plan(spd_medium, tiny_config)
        a = simulate_solve(plan, tiny_config)
        b = simulate_solve(plan, tiny_config)
        assert a.cycles == b.cycles

    def test_sweeps_similar_cost(self, spd_medium, tiny_config):
        # Forward and backward sweeps stream the same panels.
        plan = make_plan(spd_medium, tiny_config)
        report = simulate_solve(plan, tiny_config)
        ratio = report.forward_cycles / report.backward_cycles
        assert 0.5 < ratio < 2.0

    def test_solve_cheaper_than_factorization(self):
        # Figure 2: the solve phase is fast relative to factorization
        # once fronts carry real cubic work.
        cfg = SpatulaConfig.paper()
        matrix = grid_laplacian_3d(16, seed=1)
        plan = make_plan(matrix, cfg, ordering="nd", relax_small=32,
                         relax_ratio=0.5, force_small=64)
        factor = SpatulaSim(plan, cfg).run()
        solve = simulate_solve(plan, cfg)
        assert solve.cycles < factor.cycles

    def test_bandwidth_below_peak(self, spd_medium, tiny_config):
        plan = make_plan(spd_medium, tiny_config)
        report = simulate_solve(plan, tiny_config)
        peak = tiny_config.hbm_phys * tiny_config.hbm_gbs_per_phy
        assert 0 < report.avg_bandwidth_gbs <= peak

    def test_chain_tree_serializes(self, tiny_config):
        # A banded matrix in natural order yields a chain of supernodes:
        # the sweep cannot parallelize, so more PEs must not help.
        matrix = banded_spd(64, 2, seed=1)
        plan = make_plan(matrix, tiny_config, ordering="natural")
        one_pe = simulate_solve(plan, SpatulaConfig.tiny(n_pes=1))
        two_pe = simulate_solve(plan, tiny_config)
        assert two_pe.cycles >= 0.9 * one_pe.cycles

    def test_bushy_tree_parallelizes(self):
        matrix = grid_laplacian_3d(8, seed=2)
        cfg_small = SpatulaConfig.small()
        plan = make_plan(matrix, cfg_small, ordering="nd")
        one = simulate_solve(plan, SpatulaConfig.small(n_pes=1))
        many = simulate_solve(plan, cfg_small)
        assert many.cycles < one.cycles

    def test_tile_mismatch_rejected(self, spd_small, tiny_config):
        plan = make_plan(spd_small, tiny_config)
        with pytest.raises(ValueError):
            SolveSim(plan, SpatulaConfig.small())

    def test_lu_solve_phase(self, unsym_small, tiny_config):
        plan = make_plan(unsym_small, tiny_config, kind="lu")
        report = simulate_solve(plan, tiny_config)
        assert report.cycles > 0
