"""Tests for the parallel blocked numeric engine.

Covers the blocked BLAS-3 dense kernels against per-pivot oracles, the
bit-identical level-scheduled parallel traversal, blocked multi-RHS panel
solves against column-by-column oracles, the pattern-keyed analysis
cache, and the tuning knobs.
"""

import numpy as np
import pytest

from repro.numeric import SparseSolver
from repro.numeric.cache import AnalysisCache, analysis_cache, pattern_digest
from repro.numeric.cholesky import multifrontal_cholesky
from repro.numeric.dense import (
    dense_cholesky,
    dense_lu_nopivot,
    partial_cholesky,
    partial_lu,
    solve_lower_dense,
    solve_upper_dense,
)
from repro.numeric.engine import numeric_context
from repro.numeric.lu import multifrontal_lu
from repro.numeric.tuning import get_tuning, set_tuning, tuned
from repro.obs.metrics import global_registry, reset_global_registry
from repro.sparse import circuit_like, grid_laplacian_2d, grid_laplacian_3d
from repro.sparse.csc import CSCMatrix
from repro.symbolic.analyze import symbolic_factorize
from repro.symbolic.etree import etree_level_sets


def _random_spd_dense(n, rng):
    a = rng.standard_normal((n, n))
    return a @ a.T + n * np.eye(n)


def _reference_cholesky(a):
    """Unblocked per-pivot Cholesky oracle."""
    f = np.array(a, dtype=np.float64)
    n = f.shape[0]
    for j in range(n):
        f[j, j] = np.sqrt(f[j, j])
        f[j + 1:, j] /= f[j, j]
        for k in range(j + 1, n):
            f[k:, k] -= f[k:, j] * f[k, j]
    return np.tril(f)


class TestBlockedDenseKernels:
    """Blocked kernels agree with per-pivot oracles at every block size."""

    @pytest.mark.parametrize("n", [1, 5, 31, 32, 33, 70])
    @pytest.mark.parametrize("block", [1, 8, 32, 48, 200])
    def test_dense_cholesky_blocked(self, rng, n, block):
        a = _random_spd_dense(n, rng)
        lower = dense_cholesky(a, block=block)
        assert np.allclose(lower @ lower.T, a, atol=1e-8 * n)
        assert np.allclose(np.triu(lower, 1), 0.0)

    @pytest.mark.parametrize("n", [1, 5, 31, 32, 33, 70])
    @pytest.mark.parametrize("block", [1, 8, 32, 48, 200])
    def test_dense_lu_blocked(self, rng, n, block):
        a = _random_spd_dense(n, rng)  # diagonally dominant: no pivoting
        lower, upper = dense_lu_nopivot(a, block=block)
        assert np.allclose(lower @ upper, a, atol=1e-8 * n)
        assert np.allclose(np.diag(lower), 1.0)

    def test_block_size_does_not_change_cholesky(self, rng):
        a = _random_spd_dense(64, rng)
        reference = _reference_cholesky(a)
        for block in (1, 7, 16, 64, 128):
            assert np.allclose(dense_cholesky(a, block=block), reference,
                               rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("n_pivots", [1, 10, 24, 25])
    def test_partial_cholesky_blocked_matches_unblocked(self, rng,
                                                        n_pivots):
        a = _random_spd_dense(40, rng)
        blocked = a.copy()
        partial_cholesky(blocked, n_pivots, block=8)
        unblocked = a.copy()
        partial_cholesky(unblocked, n_pivots, block=1)
        # Pivot columns and the (lower-triangle) Schur complement agree.
        assert np.allclose(np.tril(blocked)[:, :n_pivots],
                           np.tril(unblocked)[:, :n_pivots],
                           rtol=1e-12, atol=1e-12)
        assert np.allclose(
            np.tril(blocked[n_pivots:, n_pivots:]),
            np.tril(unblocked[n_pivots:, n_pivots:]),
            rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("n_pivots", [1, 10, 24, 25])
    def test_partial_lu_blocked_matches_unblocked(self, rng, n_pivots):
        a = _random_spd_dense(40, rng)
        blocked = a.copy()
        partial_lu(blocked, n_pivots, block=8)
        unblocked = a.copy()
        partial_lu(unblocked, n_pivots, block=1)
        assert np.allclose(blocked, unblocked, rtol=1e-12, atol=1e-12)

    def test_non_spd_raises(self):
        a = np.array([[1.0, 2.0], [2.0, 1.0]])  # indefinite
        with pytest.raises(ValueError, match="non-SPD"):
            dense_cholesky(a, block=16)

    @pytest.mark.parametrize("k", [1, 3, 17])
    def test_dense_triangular_panels(self, rng, k):
        n = 50
        tri = np.tril(rng.standard_normal((n, n))) + n * np.eye(n)
        b = rng.standard_normal((n, k))
        y = solve_lower_dense(tri, b)
        assert np.allclose(tri @ y, b, atol=1e-10)
        x = solve_upper_dense(tri.T, b)
        assert np.allclose(tri.T @ x, b, atol=1e-10)
        # 1-D round trip keeps the shape.
        v = rng.standard_normal(n)
        assert solve_lower_dense(tri, v).shape == (n,)


class TestLevelSets:
    def test_level_sets_partition_and_order(self):
        matrix = grid_laplacian_3d(4, seed=0)
        sf = symbolic_factorize(matrix, kind="cholesky")
        parent = np.array([sn.parent for sn in sf.tree.supernodes])
        levels = etree_level_sets(parent)
        seen = np.concatenate(levels)
        assert sorted(seen) == list(range(len(parent)))
        # Every node's children appear in strictly earlier levels.
        level_of = np.empty(len(parent), dtype=int)
        for depth, level in enumerate(levels):
            level_of[level] = depth
        for node, par in enumerate(parent):
            if par >= 0:
                assert level_of[node] < level_of[par]

    def test_empty(self):
        assert etree_level_sets(np.array([], dtype=np.int64)) == []


class TestParallelDeterminism:
    """workers=N is bit-identical to the sequential traversal."""

    def test_cholesky_workers_bit_identical(self):
        matrix = grid_laplacian_3d(6, seed=9)
        sf = symbolic_factorize(matrix, kind="cholesky")
        serial = multifrontal_cholesky(matrix, sf, workers=1)
        parallel = multifrontal_cholesky(matrix, sf, workers=4)
        for (r1, b1), (r2, b2) in zip(serial.columns, parallel.columns):
            assert np.array_equal(r1, r2)
            assert np.array_equal(b1, b2)  # bitwise, not allclose

    def test_lu_workers_bit_identical(self):
        matrix = circuit_like(300, seed=11)
        from repro.ordering.pivoting import apply_static_pivoting

        work, _ = apply_static_pivoting(matrix)
        sf = symbolic_factorize(work, kind="lu")
        serial = multifrontal_lu(work, sf, workers=1)
        parallel = multifrontal_lu(work, sf, workers=4)
        assert serial.perturbed_pivots == parallel.perturbed_pivots
        for (r1, l1, u1), (r2, l2, u2) in zip(serial.fronts,
                                              parallel.fronts):
            assert np.array_equal(r1, r2)
            assert np.array_equal(l1, l2)
            assert np.array_equal(u1, u2)

    def test_solver_workers_end_to_end(self, spd_medium):
        b = np.arange(spd_medium.n_rows, dtype=np.float64)
        x1 = SparseSolver(spd_medium, workers=1, use_cache=False).solve(b)
        x4 = SparseSolver(spd_medium, workers=4, use_cache=False).solve(b)
        assert np.array_equal(x1, x4)


class TestBlockedMultiRHS:
    """(n, k) right-hand sides match the column-by-column oracle."""

    @pytest.mark.parametrize("method", ["supernodal", "csc"])
    def test_cholesky_panel_matches_columns(self, spd_medium, method):
        solver = SparseSolver(spd_medium, use_cache=False)
        rng = np.random.default_rng(0)
        b = rng.standard_normal((spd_medium.n_rows, 7))
        panel = solver.solve(b, method=method)
        assert panel.shape == b.shape
        for j in range(b.shape[1]):
            xj = solver.solve(b[:, j], method=method)
            assert np.allclose(panel[:, j], xj, rtol=1e-12, atol=1e-12)
        assert max(
            solver.residual_norm(spd_medium, panel[:, j], b[:, j])
            for j in range(b.shape[1])
        ) < 1e-10

    @pytest.mark.parametrize("method", ["supernodal", "csc"])
    def test_lu_panel_matches_columns(self, unsym_small, method):
        solver = SparseSolver(unsym_small, kind="lu", use_cache=False)
        rng = np.random.default_rng(1)
        b = rng.standard_normal((unsym_small.n_rows, 5))
        panel = solver.solve(b, method=method)
        for j in range(b.shape[1]):
            xj = solver.solve(b[:, j], method=method)
            assert np.allclose(panel[:, j], xj, rtol=1e-12, atol=1e-12)

    def test_bad_shapes_rejected(self, spd_small):
        solver = SparseSolver(spd_small, use_cache=False)
        with pytest.raises(ValueError):
            solver.solve(np.ones((spd_small.n_rows, 2, 2)))
        with pytest.raises(ValueError):
            solver.solve(np.ones(spd_small.n_rows + 1))


class TestRefactorize:
    def test_refactorize_matches_fresh_solver(self, spd_medium):
        solver = SparseSolver(spd_medium, use_cache=False)
        # Same pattern, shifted values (still SPD).
        shifted = CSCMatrix(
            spd_medium.n_rows, spd_medium.n_cols,
            spd_medium.indptr.copy(), spd_medium.indices.copy(),
            spd_medium.data * 1.0,
        )
        shifted.data = shifted.data.copy()
        diag_mask = np.repeat(
            np.arange(spd_medium.n_cols), np.diff(spd_medium.indptr)
        ) == spd_medium.indices
        shifted.data[diag_mask] += 1.5
        solver.refactorize(shifted)
        fresh = SparseSolver(shifted, use_cache=False)
        b = np.linspace(-1.0, 1.0, spd_medium.n_rows)
        assert np.allclose(solver.solve(b), fresh.solve(b),
                           rtol=1e-12, atol=1e-12)

    def test_refactorize_lu_no_coo_round_trip(self, unsym_small):
        solver = SparseSolver(unsym_small, kind="lu", use_cache=False)
        scaled = CSCMatrix(
            unsym_small.n_rows, unsym_small.n_cols,
            unsym_small.indptr.copy(), unsym_small.indices.copy(),
            unsym_small.data * 1.25,
        )
        solver.refactorize(scaled)
        fresh = SparseSolver(scaled, kind="lu", use_cache=False)
        b = np.sin(np.arange(unsym_small.n_rows, dtype=np.float64))
        assert np.allclose(solver.solve(b), fresh.solve(b),
                           rtol=1e-10, atol=1e-12)

    def test_pattern_change_rejected(self, spd_small):
        solver = SparseSolver(spd_small, use_cache=False)
        other = grid_laplacian_2d(8, seed=3)
        with pytest.raises(ValueError, match="pattern changed"):
            solver.refactorize(other)


class TestAnalysisCache:
    def test_digest_distinguishes_patterns(self, spd_small, spd_medium):
        assert pattern_digest(spd_small) == pattern_digest(spd_small)
        assert pattern_digest(spd_small) != pattern_digest(spd_medium)

    def test_hit_returns_same_analysis(self, spd_medium):
        cache = AnalysisCache()
        a = cache.get_or_analyze(spd_medium, "cholesky", "amd")
        b = cache.get_or_analyze(spd_medium, "cholesky", "amd")
        assert a is b
        assert cache.hits == 1 and cache.misses == 1

    def test_key_includes_parameters(self, spd_medium):
        cache = AnalysisCache()
        a = cache.get_or_analyze(spd_medium, "cholesky", "amd")
        b = cache.get_or_analyze(spd_medium, "cholesky", "nd")
        assert a is not b
        assert cache.misses == 2

    def test_lru_eviction(self, spd_small, spd_medium, spd_irregular):
        cache = AnalysisCache(capacity=2)
        cache.get_or_analyze(spd_small, "cholesky", "amd")
        cache.get_or_analyze(spd_medium, "cholesky", "amd")
        cache.get_or_analyze(spd_irregular, "cholesky", "amd")
        assert len(cache) == 2
        cache.get_or_analyze(spd_small, "cholesky", "amd")  # evicted: miss
        assert cache.misses == 4

    def test_solver_cache_hit_is_numerically_identical(self, spd_medium):
        analysis_cache().clear()
        reset_global_registry()
        cold = SparseSolver(spd_medium, use_cache=True)
        warm = SparseSolver(spd_medium, use_cache=True)
        assert warm.symbolic is cold.symbolic
        snap = global_registry().snapshot()
        assert snap["numeric.analysis_cache.hits"] >= 1
        b = np.cos(np.arange(spd_medium.n_rows, dtype=np.float64))
        assert np.array_equal(cold.solve(b), warm.solve(b))
        # And equal to the cache-bypassing solver.
        no_cache = SparseSolver(spd_medium, use_cache=False)
        assert np.allclose(warm.solve(b), no_cache.solve(b),
                           rtol=1e-12, atol=1e-12)


class TestTuning:
    def test_defaults_and_override(self):
        base = get_tuning()
        assert base.block_size >= 1
        with tuned(block_size=17, workers=3):
            assert get_tuning().block_size == 17
            assert get_tuning().workers == 3
        assert get_tuning().block_size == base.block_size

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            with tuned(block_size=0):
                pass
        with pytest.raises(ValueError):
            with tuned(workers=0):
                pass

    def test_set_tuning_roundtrip(self):
        import dataclasses

        base = get_tuning()
        try:
            set_tuning(dataclasses.replace(base, block_size=24))
            assert get_tuning().block_size == 24
        finally:
            set_tuning(base)

    def test_tuned_block_size_changes_nothing_numerically(self,
                                                          spd_medium):
        sf = symbolic_factorize(spd_medium, kind="cholesky")
        with tuned(block_size=4):
            f_small = multifrontal_cholesky(spd_medium, sf)
        with tuned(block_size=96):
            f_large = multifrontal_cholesky(spd_medium, sf)
        for (_, b1), (_, b2) in zip(f_small.columns, f_large.columns):
            assert np.allclose(b1, b2, rtol=1e-12, atol=1e-12)


class TestNumericContextMetrics:
    def test_context_cached_on_symbolic(self, spd_medium):
        sf = symbolic_factorize(spd_medium, kind="cholesky")
        ctx1 = numeric_context(sf, spd_medium)
        ctx2 = numeric_context(sf, spd_medium)
        assert ctx1 is ctx2

    def test_pattern_mismatch_detected(self, spd_small, spd_medium):
        sf = symbolic_factorize(spd_medium, kind="cholesky")
        with pytest.raises(ValueError, match="does not match"):
            numeric_context(sf, spd_small)
        # a cached context for another pattern is rebuilt, not misused
        numeric_context(sf, spd_medium)

    def test_factor_metrics_exported(self, spd_medium):
        reset_global_registry()
        sf = symbolic_factorize(spd_medium, kind="cholesky")
        multifrontal_cholesky(spd_medium, sf)
        snap = global_registry().snapshot()
        assert snap["numeric.factor.count"] == 1
        assert snap["numeric.factor.flops"] == sf.flops
        assert snap["numeric.levels.count"] >= 1
