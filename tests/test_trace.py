"""Tests for execution tracing."""

import json

import numpy as np
import pytest

from repro.arch.config import SpatulaConfig
from repro.arch.sim import SpatulaSim
from repro.arch.trace import (
    TraceEvent,
    export_chrome_trace,
    render_gantt,
    utilization_timeline,
)
from repro.symbolic import symbolic_factorize
from repro.tasks.plan import build_plan


@pytest.fixture
def traced_sim(spd_medium):
    cfg = SpatulaConfig.tiny()
    symbolic = symbolic_factorize(spd_medium)
    plan = build_plan(symbolic, tile=cfg.tile, supertile=cfg.supertile)
    sim = SpatulaSim(plan, cfg, trace=True)
    report = sim.run()
    return sim, report


class TestTraceCollection:
    def test_one_event_per_task(self, traced_sim):
        sim, report = traced_sim
        assert len(sim.trace) == report.n_tasks

    def test_events_within_horizon(self, traced_sim):
        sim, report = traced_sim
        for event in sim.trace:
            assert 0 <= event.start < event.end <= report.cycles
            assert 0 <= event.pe < report.config.n_pes

    def test_no_overlap_per_pe(self, traced_sim):
        sim, _ = traced_sim
        by_pe = {}
        for e in sim.trace:
            by_pe.setdefault(e.pe, []).append((e.start, e.end))
        for intervals in by_pe.values():
            intervals.sort()
            for (s1, e1), (s2, _e2) in zip(intervals, intervals[1:]):
                assert e1 <= s2, "array executed two tasks at once"

    def test_busy_cycles_match_trace(self, traced_sim):
        sim, report = traced_sim
        traced_busy = sum(e.duration for e in sim.trace)
        assert traced_busy == sum(report.busy_cycles_by_type.values())

    def test_disabled_by_default(self, spd_small):
        cfg = SpatulaConfig.tiny()
        symbolic = symbolic_factorize(spd_small)
        plan = build_plan(symbolic, tile=cfg.tile, supertile=cfg.supertile)
        sim = SpatulaSim(plan, cfg)
        sim.run()
        assert sim.trace is None


class TestRenderers:
    def test_gantt_shape(self, traced_sim):
        sim, _ = traced_sim
        text = render_gantt(sim.trace, sim.config.n_pes, width=40)
        lines = text.splitlines()
        assert len(lines) == sim.config.n_pes + 1  # PEs + legend
        assert all("|" in line for line in lines[:-1])

    def test_gantt_empty(self):
        assert "no events" in render_gantt([], 2)

    def test_utilization_bounded(self, traced_sim):
        sim, _ = traced_sim
        util = utilization_timeline(sim.trace, sim.config.n_pes, 20)
        assert util.shape == (20,)
        assert np.all(util >= 0) and np.all(util <= 1.0 + 1e-9)

    def test_utilization_empty_events(self):
        util = utilization_timeline([], 4, n_buckets=10)
        assert util.shape == (10,)
        assert np.all(util == 0.0)

    def test_utilization_single_short_event(self):
        e = TraceEvent(pe=0, start=0, end=1, ttype="dgemm", sn=0,
                       task_index=0)
        util = utilization_timeline([e], n_pes=2, n_buckets=8)
        assert util.shape == (8,)
        # horizon=1 < n_buckets: scale clamps to 1 cycle/bucket; the one
        # busy cycle lands in bucket 0 at 1/n_pes utilization.
        assert util[0] == pytest.approx(0.5)
        assert np.all(util[1:] == 0.0)

    def test_utilization_horizon_below_bucket_count(self):
        events = [
            TraceEvent(pe=0, start=0, end=3, ttype="dgemm", sn=0,
                       task_index=0),
            TraceEvent(pe=1, start=1, end=3, ttype="tsolve", sn=1,
                       task_index=0),
        ]
        util = utilization_timeline(events, n_pes=2, n_buckets=50)
        assert util.shape == (50,)
        assert np.all(util <= 1.0 + 1e-9)
        # total busy cycles preserved despite the tiny horizon
        assert util.sum() * 1 * 2 == pytest.approx(5.0)

    def test_utilization_integral_matches_busy(self, traced_sim):
        sim, report = traced_sim
        n_buckets = 25
        util = utilization_timeline(sim.trace, sim.config.n_pes, n_buckets)
        horizon = max(e.end for e in sim.trace)
        scale = max(1, -(-horizon // n_buckets))
        total = util.sum() * scale * sim.config.n_pes
        assert total == pytest.approx(
            sum(e.duration for e in sim.trace), rel=1e-9
        )

    def test_chrome_export_roundtrip(self, traced_sim, tmp_path):
        sim, _ = traced_sim
        path = tmp_path / "t.json"
        export_chrome_trace(sim.trace, path)
        data = json.loads(path.read_text())
        assert len(data["traceEvents"]) == len(sim.trace)
        tids = {e["tid"] for e in data["traceEvents"]}
        assert tids <= set(range(sim.config.n_pes))

    def test_chrome_export_us_conversion(self, tmp_path):
        events = [TraceEvent(pe=0, start=2000, end=6000, ttype="dgemm",
                             sn=0, task_index=0)]
        path = tmp_path / "t.json"
        export_chrome_trace(events, path, freq_ghz=2.0)
        (record,) = json.loads(path.read_text())["traceEvents"]
        assert record["ts"] == pytest.approx(1.0)   # 2000 cy @ 2 GHz = 1 us
        assert record["dur"] == pytest.approx(2.0)
        assert record["cat"] == "dgemm"
        assert record["args"]["supernode"] == 0

    def test_chrome_export_tags_active_telemetry_run(self, tmp_path):
        from repro.obs import telemetry

        events = [TraceEvent(pe=0, start=0, end=10, ttype="dgemm",
                             sn=0, task_index=0)]
        path = tmp_path / "plain.json"
        export_chrome_trace(events, path)
        other = json.loads(path.read_text())["otherData"]
        assert "telemetry_run" not in other

        telemetry.start(tmp_path / "tele", run_id="run-tagged")
        try:
            path = tmp_path / "tagged.json"
            export_chrome_trace(events, path)
            other = json.loads(path.read_text())["otherData"]
            assert other["telemetry_run"] == "run-tagged"
        finally:
            telemetry.stop(dump_registry=False)

    def test_chrome_export_with_spans(self, traced_sim, tmp_path):
        from repro.obs import Span

        sim, _ = traced_sim
        spans = [
            Span(name="symbolic.etree", start_s=10.0, duration_s=0.25),
            Span(name="sim.run", start_s=10.5, duration_s=1.0, depth=1,
                 parent="pipeline", peak_mem_bytes=4096),
        ]
        path = tmp_path / "t.json"
        export_chrome_trace(sim.trace, path, spans=spans)
        records = json.loads(path.read_text())["traceEvents"]
        host = [r for r in records if r.get("pid") == 1 and r["ph"] == "X"]
        assert len(host) == 2
        by_name = {r["name"]: r for r in host}
        # wall-clock times rebased so the earliest span starts at ts=0
        assert by_name["symbolic.etree"]["ts"] == pytest.approx(0.0)
        assert by_name["sim.run"]["ts"] == pytest.approx(0.5e6)
        assert by_name["sim.run"]["dur"] == pytest.approx(1e6)
        assert by_name["sim.run"]["tid"] == 1
        assert by_name["sim.run"]["args"]["peak_mem_bytes"] == 4096
        # both processes get name metadata for the Perfetto view
        meta = [r for r in records if r["ph"] == "M"]
        assert {r["pid"] for r in meta} == {0, 1}
        # PE events still all present under pid 0
        pe_events = [r for r in records
                     if r.get("pid") == 0 and r["ph"] == "X"]
        assert len(pe_events) == len(sim.trace)

    def test_chrome_export_span_nesting_depth_preserved(self, tmp_path):
        """Host-span nesting depth must survive the export as the tid of
        process 1, and PE events must stay on process 0 keyed by PE."""
        from repro.obs import Span

        events = [
            TraceEvent(pe=0, start=0, end=10, ttype="dgemm", sn=0,
                       task_index=0),
            TraceEvent(pe=3, start=5, end=12, ttype="tsolve", sn=0,
                       task_index=1),
        ]
        spans = [
            Span(name="pipeline", start_s=1.0, duration_s=3.0),
            Span(name="pipeline.symbolic", start_s=1.1, duration_s=1.0,
                 depth=1, parent="pipeline"),
            Span(name="pipeline.symbolic.etree", start_s=1.2,
                 duration_s=0.5, depth=2, parent="pipeline.symbolic"),
        ]
        path = tmp_path / "t.json"
        export_chrome_trace(events, path, spans=spans)
        records = json.loads(path.read_text())["traceEvents"]
        pe = {r["name"]: r for r in records
              if r.get("pid") == 0 and r["ph"] == "X"}
        host = {r["name"]: r for r in records
                if r.get("pid") == 1 and r["ph"] == "X"}
        assert len(pe) == 2 and len(host) == 3
        assert pe["dgemm S0#0"]["tid"] == 0
        assert pe["tsolve S0#1"]["tid"] == 3
        assert host["pipeline"]["tid"] == 0
        assert host["pipeline.symbolic"]["tid"] == 1
        assert host["pipeline.symbolic.etree"]["tid"] == 2
        assert host["pipeline.symbolic.etree"]["args"]["parent"] == \
            "pipeline.symbolic"

    def test_trace_event_duration(self):
        e = TraceEvent(pe=0, start=10, end=25, ttype="dgemm", sn=1,
                       task_index=2)
        assert e.duration == 15
