"""Tests for the synthetic matrix generators."""

import numpy as np
import pytest

from repro.sparse import (
    arrow_spd,
    arrow_unsym,
    banded_spd,
    bipartite_cover,
    circuit_like,
    grid_laplacian_2d,
    grid_laplacian_3d,
    grid_unsym_2d,
    grid_unsym_3d,
    power_law_spd,
    random_spd,
    random_unsymmetric,
)


def is_spd(matrix):
    dense = matrix.to_dense()
    if not np.allclose(dense, dense.T):
        return False
    return bool(np.linalg.eigvalsh(dense).min() > 0)


def is_diag_dominant(matrix):
    dense = matrix.to_dense()
    off = np.sum(np.abs(dense), axis=1) - np.abs(np.diag(dense))
    return bool(np.all(np.abs(np.diag(dense)) >= off))


SPD_BUILDERS = [
    ("grid2d", lambda: grid_laplacian_2d(6, seed=1)),
    ("grid2d-rect", lambda: grid_laplacian_2d(4, 7, seed=1)),
    ("grid3d", lambda: grid_laplacian_3d(4, seed=2)),
    ("grid3d-rect", lambda: grid_laplacian_3d(3, 4, 5, seed=2)),
    ("banded", lambda: banded_spd(30, 3, seed=3)),
    ("plaw", lambda: power_law_spd(80, seed=4)),
    ("random", lambda: random_spd(40, density=0.1, seed=5)),
    ("arrow", lambda: arrow_spd(4, 9, 6, seed=6)),
]

UNSYM_BUILDERS = [
    ("circuit", lambda: circuit_like(64, seed=1)),
    ("gridu2d", lambda: grid_unsym_2d(6, seed=2)),
    ("gridu3d", lambda: grid_unsym_3d(4, seed=3)),
    ("randu", lambda: random_unsymmetric(40, density=0.08, seed=4)),
    ("arrowu", lambda: arrow_unsym(4, 9, 6, seed=5)),
    ("bipartite", lambda: bipartite_cover(30, 30, degree=3, seed=6)),
]


@pytest.mark.parametrize("name,build", SPD_BUILDERS)
def test_spd_generators_are_spd(name, build):
    m = build()
    m.validate()
    assert is_spd(m), f"{name} is not SPD"


@pytest.mark.parametrize("name,build", UNSYM_BUILDERS)
def test_unsym_generators_diag_dominant(name, build):
    m = build()
    m.validate()
    assert is_diag_dominant(m), f"{name} is not diagonally dominant"
    assert np.all(m.diagonal() != 0)


@pytest.mark.parametrize("name,build", SPD_BUILDERS + UNSYM_BUILDERS)
def test_generators_deterministic(name, build):
    a, b = build(), build()
    assert np.array_equal(a.indptr, b.indptr)
    assert np.array_equal(a.indices, b.indices)
    assert np.allclose(a.data, b.data)


def test_grid_2d_size_and_stencil():
    m = grid_laplacian_2d(5, 6, seed=0)
    assert m.shape == (30, 30)
    # Interior nodes of a 5-point stencil have 4 off-diagonal neighbors.
    dense = m.to_dense()
    interior = 1 * 6 + 1  # node (1, 1)
    assert np.count_nonzero(dense[interior]) == 5

    m3 = grid_laplacian_3d(3, 4, 5, seed=0)
    assert m3.shape == (60, 60)


def test_seed_changes_values_not_pattern():
    a = grid_laplacian_2d(5, seed=1)
    b = grid_laplacian_2d(5, seed=2)
    assert np.array_equal(a.indices, b.indices)
    assert not np.allclose(a.data, b.data)


def test_circuit_near_symmetric_pattern():
    m = circuit_like(100, seed=9)
    dense = m.to_dense() != 0
    overlap = np.logical_and(dense, dense.T).sum() / dense.sum()
    assert overlap > 0.7  # mostly symmetric
    assert not m.is_structurally_symmetric()  # but not fully


def test_circuit_has_hubs():
    m = circuit_like(2500, hub_fraction=0.3, seed=10)
    degrees = np.diff(m.indptr)
    assert degrees.max() > 2.5 * np.median(degrees)


def test_banded_bandwidth():
    m = banded_spd(20, 2, seed=0)
    rows = m.to_coo().rows
    cols = m.to_coo().cols
    assert np.abs(rows - cols).max() <= 2


def test_arrow_block_structure():
    m = arrow_spd(3, 16, 5, seed=0)
    dense = m.to_dense() != 0
    # Two different diagonal blocks never couple directly.
    assert not dense[:16, 16:32].any()


def test_random_spd_density_scales():
    sparse = random_spd(50, density=0.02, seed=1)
    dense = random_spd(50, density=0.2, seed=1)
    assert dense.nnz > sparse.nnz


def test_bipartite_block_structure():
    m = bipartite_cover(20, 25, degree=3, seed=2)
    assert m.shape == (45, 45)
    pattern = m.to_dense() != 0
    # Left-left coupling only via the diagonal.
    left_block = pattern[:20, :20] & ~np.eye(20, dtype=bool)
    assert not left_block.any()
