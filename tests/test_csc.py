"""Unit tests for the CSC sparse format."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix


def random_csc(rng, n_rows=8, n_cols=8, density=0.3):
    dense = rng.standard_normal((n_rows, n_cols))
    dense[rng.random((n_rows, n_cols)) > density] = 0.0
    return CSCMatrix.from_dense(dense), dense


class TestConstruction:
    def test_from_dense_roundtrip(self, rng):
        m, dense = random_csc(rng)
        assert np.allclose(m.to_dense(), dense)

    def test_from_coo_sums_duplicates(self):
        coo = COOMatrix(2, 2, [0, 0], [0, 0], [1.5, 2.5])
        m = CSCMatrix.from_coo(coo)
        assert m.nnz == 1
        assert m.to_dense()[0, 0] == 4.0

    def test_matches_scipy_layout(self, rng):
        m, dense = random_csc(rng)
        ref = sp.csc_matrix(dense)
        assert np.array_equal(m.indptr, ref.indptr)
        assert np.array_equal(m.indices, ref.indices)
        assert np.allclose(m.data, ref.data)

    def test_identity(self):
        eye = CSCMatrix.identity(5)
        assert np.allclose(eye.to_dense(), np.eye(5))

    def test_validate_accepts_good(self, rng):
        m, _ = random_csc(rng)
        m.validate()

    def test_validate_rejects_bad_indptr(self):
        m = CSCMatrix(2, 2, [0, 2, 1], [0, 1], [1.0, 1.0])
        with pytest.raises(ValueError):
            m.validate()

    def test_validate_rejects_unsorted_rows(self):
        m = CSCMatrix(3, 1, [0, 2], [2, 0], [1.0, 1.0])
        with pytest.raises(ValueError):
            m.validate()

    def test_validate_rejects_wrong_indptr_length(self):
        m = CSCMatrix(2, 3, [0, 1], [0], [1.0])
        with pytest.raises(ValueError):
            m.validate()


class TestAccess:
    def test_col_rows_and_vals(self):
        dense = np.array([[1.0, 0.0], [2.0, 3.0]])
        m = CSCMatrix.from_dense(dense)
        assert list(m.col_rows(0)) == [0, 1]
        assert list(m.col_vals(0)) == [1.0, 2.0]
        assert m.col_nnz(1) == 1

    def test_diagonal(self, rng):
        m, dense = random_csc(rng)
        assert np.allclose(m.diagonal(), np.diag(dense))

    def test_diagonal_rectangular(self):
        dense = np.arange(6, dtype=float).reshape(2, 3) + 1
        m = CSCMatrix.from_dense(dense)
        assert np.allclose(m.diagonal(), [1.0, 5.0])

    def test_to_coo_roundtrip(self, rng):
        m, dense = random_csc(rng)
        again = CSCMatrix.from_coo(m.to_coo())
        assert np.allclose(again.to_dense(), dense)

    def test_column_pattern(self, rng):
        m, dense = random_csc(rng)
        for j, pat in enumerate(m.column_pattern_csc()):
            assert np.array_equal(pat, np.nonzero(dense[:, j])[0])


class TestOperations:
    def test_transpose(self, rng):
        m, dense = random_csc(rng, 5, 9)
        assert np.allclose(m.transpose().to_dense(), dense.T)

    def test_matvec(self, rng):
        m, dense = random_csc(rng)
        x = rng.standard_normal(8)
        assert np.allclose(m.matvec(x), dense @ x)

    def test_matvec_dim_mismatch(self, rng):
        m, _ = random_csc(rng)
        with pytest.raises(ValueError):
            m.matvec(np.ones(3))

    def test_permuted(self, rng):
        m, dense = random_csc(rng)
        perm = rng.permutation(8)
        assert np.allclose(m.permuted(perm).to_dense(),
                           dense[np.ix_(perm, perm)])

    def test_lower_triangle(self, rng):
        m, dense = random_csc(rng)
        assert np.allclose(m.lower_triangle().to_dense(), np.tril(dense))

    def test_pattern_symmetrized_pattern(self, rng):
        m, dense = random_csc(rng)
        s = m.pattern_symmetrized()
        want = (dense != 0) | (dense.T != 0)
        got = np.zeros_like(want)
        for j in range(s.n_cols):
            got[s.col_rows(j), j] = True
        assert np.array_equal(got, want)

    def test_pattern_symmetrized_keeps_values(self, rng):
        m, dense = random_csc(rng)
        s = m.pattern_symmetrized()
        assert np.allclose(s.to_dense(), dense)

    def test_is_structurally_symmetric(self):
        sym = CSCMatrix.from_dense(np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert sym.is_structurally_symmetric()
        asym = CSCMatrix.from_dense(np.array([[1.0, 2.0], [0.0, 4.0]]))
        assert not asym.is_structurally_symmetric()

    def test_is_symmetric_numeric(self):
        sym = CSCMatrix.from_dense(np.array([[1.0, 2.0], [2.0, 4.0]]))
        assert sym.is_symmetric()
        notsym = CSCMatrix.from_dense(np.array([[1.0, 2.0], [2.1, 4.0]]))
        assert not notsym.is_symmetric()

    def test_grid_generator_matrix_symmetric(self, spd_small):
        assert spd_small.is_symmetric()
        spd_small.validate()
