"""Tests for the task decomposition: task graphs, FLOP accounting, and
whole-matrix plans."""

import numpy as np
import pytest

from repro.symbolic import symbolic_factorize
from repro.symbolic.tiling import TileGrid
from repro.tasks.flops import (
    dchol_task_flops,
    dgemm_task_flops,
    dlu_task_flops,
    matrix_factor_flops,
    supernode_factor_flops,
    task_flops,
    tsolve_task_flops,
)
from repro.tasks.graph import build_task_graph
from repro.tasks.plan import build_plan
from repro.tasks.task import TaskType, TileRef


def grid(front, pivots, tile=4, supertile=4):
    return TileGrid(front_size=front, n_pivot_cols=pivots, tile=tile,
                    supertile=supertile)


class TestFlopFormulas:
    def test_supernode_full_factor_cubic(self):
        flops = supernode_factor_flops(60, 60, symmetric=True)
        assert abs(flops - 60 ** 3 / 3) / (60 ** 3 / 3) < 0.15

    def test_lu_double_cholesky(self):
        chol = supernode_factor_flops(40, 20, symmetric=True)
        lu = supernode_factor_flops(40, 20, symmetric=False)
        assert 1.5 < lu / chol < 2.5

    def test_partial_less_than_full(self):
        assert supernode_factor_flops(40, 10, True) \
            < supernode_factor_flops(40, 40, True)

    def test_matrix_factor_flops_sums(self):
        fronts = np.array([10, 20])
        pivots = np.array([5, 20])
        assert matrix_factor_flops(fronts, pivots, True) == (
            supernode_factor_flops(10, 5, True)
            + supernode_factor_flops(20, 20, True)
        )

    def test_task_flops_dispatch(self):
        assert task_flops("dgemm", 4, 4, [4, 4]) \
            == dgemm_task_flops(4, 4, [4, 4]) == 2 * 4 * 4 * 8
        assert task_flops("tsolve", 4, 3) == tsolve_task_flops(4, 3)
        assert task_flops("dchol", 4, 4) == dchol_task_flops(4)
        assert task_flops("dlu", 4, 4) == dlu_task_flops(4)
        assert task_flops("gather_updates", 4, 4, [1, 1]) == 32
        with pytest.raises(ValueError):
            task_flops("fft", 4, 4)


class TestCholeskyGraph:
    def test_single_tile_front(self):
        g = build_task_graph(0, grid(4, 4), "cholesky")
        assert g.n_tasks == 1
        assert g.tasks[0].ttype is TaskType.DCHOL

    def test_two_block_front_structure(self):
        g = build_task_graph(0, grid(8, 8), "cholesky")
        types = [t.ttype for t in g.tasks]
        # chol(0,0); tsolve(1,0); dgemm(1,1); chol(1,1)
        assert types == [TaskType.DCHOL, TaskType.TSOLVE, TaskType.DGEMM,
                         TaskType.DCHOL]

    def test_figure11_task_counts(self):
        # A 4-block fully-factored front (Figure 11): per column k, one
        # chol + (B-k-1) tsolves; every tile below/at the diagonal in
        # columns k >= 1 gets one aggregated dgemm.
        b = 4
        g = build_task_graph(0, grid(4 * b, 4 * b), "cholesky")
        counts = {ttype: 0 for ttype in TaskType}
        for t in g.tasks:
            counts[t.ttype] += 1
        assert counts[TaskType.DCHOL] == b
        assert counts[TaskType.TSOLVE] == b * (b - 1) // 2
        assert counts[TaskType.DGEMM] == b * (b - 1) // 2

    def test_topological_and_deps_backward(self):
        g = build_task_graph(0, grid(40, 24), "cholesky")
        g.validate_topological()

    def test_schur_tiles_have_no_factor_tasks(self):
        g = build_task_graph(0, grid(16, 8), "cholesky")
        for t in g.tasks:
            if t.dest.block_col >= 2:  # update region at tile=4
                assert t.ttype in (TaskType.DGEMM, TaskType.GATHER)

    def test_supertile_splits_dgemms(self):
        wide = build_task_graph(0, grid(40, 40, tile=4, supertile=10),
                                "cholesky")
        split = build_task_graph(0, grid(40, 40, tile=4, supertile=2),
                                 "cholesky")
        n_wide = sum(t.ttype is TaskType.DGEMM for t in wide.tasks)
        n_split = sum(t.ttype is TaskType.DGEMM for t in split.tasks)
        assert n_split > n_wide
        assert wide.total_flops() == split.total_flops()

    def test_dgemm_inputs_are_pairs(self):
        g = build_task_graph(0, grid(20, 20), "cholesky")
        for t in g.tasks:
            if t.ttype is TaskType.DGEMM:
                assert len(t.inputs) == 2 * t.n_pairs

    def test_rowmajor_same_tasks_different_order(self):
        bf = build_task_graph(0, grid(20, 20), "cholesky", order="bf")
        rm = build_task_graph(0, grid(20, 20), "cholesky", order="rowmajor")
        rm.validate_topological()
        assert bf.n_tasks == rm.n_tasks
        assert bf.total_flops() == rm.total_flops()

        def key(t):
            return (t.ttype.value, t.dest.block_row, t.dest.block_col)

        assert sorted(map(key, bf.tasks)) == sorted(map(key, rm.tasks))

    def test_unknown_order_raises(self):
        with pytest.raises(ValueError):
            build_task_graph(0, grid(8, 8), "cholesky", order="zigzag")

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            build_task_graph(0, grid(8, 8), "qr")


class TestLUGraph:
    def test_single_tile(self):
        g = build_task_graph(0, grid(4, 4), "lu")
        assert [t.ttype for t in g.tasks] == [TaskType.DLU]

    def test_full_square_counts(self):
        b = 3
        g = build_task_graph(0, grid(4 * b, 4 * b), "lu")
        counts = {ttype: 0 for ttype in TaskType}
        for t in g.tasks:
            counts[t.ttype] += 1
        assert counts[TaskType.DLU] == b
        assert counts[TaskType.TSOLVE] == b * (b - 1)  # L and U panels

    def test_l_and_u_panels_tagged(self):
        g = build_task_graph(0, grid(12, 12), "lu")
        tags = {t.tag for t in g.tasks if t.ttype is TaskType.TSOLVE}
        assert tags == {"L", "U"}

    def test_topological(self):
        g = build_task_graph(0, grid(24, 12), "lu")
        g.validate_topological()

    def test_rowmajor_equivalent(self):
        bf = build_task_graph(0, grid(16, 8), "lu", order="bf")
        rm = build_task_graph(0, grid(16, 8), "lu", order="rowmajor")
        rm.validate_topological()
        assert bf.total_flops() == rm.total_flops()

    def test_lu_flops_double_cholesky_graph(self):
        lu = build_task_graph(0, grid(24, 24), "lu").total_flops()
        ch = build_task_graph(0, grid(24, 24), "cholesky").total_flops()
        assert 1.4 < lu / ch < 2.6


class TestGatherTasks:
    def test_gathers_emitted_first(self):
        gather_inputs = {(0, 0): [TileRef(9, 1, 1)]}
        g = build_task_graph(1, grid(8, 4), "cholesky", gather_inputs)
        assert g.tasks[0].ttype is TaskType.GATHER
        assert g.tasks[0].inputs == [TileRef(9, 1, 1)]

    def test_gather_precedes_compute_on_same_tile(self):
        gather_inputs = {(1, 1): [TileRef(9, 1, 1)]}
        g = build_task_graph(1, grid(8, 8), "cholesky", gather_inputs)
        gather_idx = next(i for i, t in enumerate(g.tasks)
                          if t.ttype is TaskType.GATHER)
        for i, t in enumerate(g.tasks):
            if t.ttype is not TaskType.GATHER and \
                    (t.dest.block_row, t.dest.block_col) == (1, 1):
                assert gather_idx in _transitive_deps(g, i)

    def test_gather_flops_counted(self):
        gather_inputs = {(0, 0): [TileRef(9, 1, 1), TileRef(8, 0, 0)]}
        g = build_task_graph(1, grid(4, 4), "cholesky", gather_inputs)
        assert g.tasks[0].flops == 4 * 4 * 2


def _transitive_deps(graph, t):
    seen = set()
    stack = list(graph.deps[t])
    while stack:
        d = stack.pop()
        if d not in seen:
            seen.add(d)
            stack.extend(graph.deps[d])
    return seen


class TestPlan:
    def test_plan_covers_all_supernodes(self, spd_medium):
        sf = symbolic_factorize(spd_medium)
        plan = build_plan(sf, tile=4, supertile=4)
        assert plan.n_supernodes == sf.n_supernodes

    def test_gather_inputs_reference_children(self, spd_medium):
        sf = symbolic_factorize(spd_medium)
        plan = build_plan(sf, tile=4, supertile=4)
        for sn in sf.tree.supernodes:
            sp = plan.supernodes[sn.index]
            children = set(sn.children)
            for refs in sp.gather_inputs.values():
                for ref in refs:
                    assert ref.sn in children

    def test_gather_only_on_lower_tiles_for_cholesky(self, spd_medium):
        sf = symbolic_factorize(spd_medium)
        plan = build_plan(sf, tile=4, supertile=4)
        for sp in plan.supernodes:
            for (i, j) in sp.gather_inputs:
                assert i >= j

    def test_task_flops_close_to_analytic(self, spd_medium):
        sf = symbolic_factorize(spd_medium)
        plan = build_plan(sf, tile=4, supertile=4)
        task_total = sum(
            plan.task_graph(k).total_flops()
            for k in range(plan.n_supernodes)
        )
        analytic = plan.total_factor_flops()
        assert task_total >= analytic  # padding only adds work
        assert task_total < 4 * analytic

    def test_plan_lu(self, unsym_small):
        sf = symbolic_factorize(unsym_small, kind="lu")
        plan = build_plan(sf, tile=4, supertile=4)
        for k in range(plan.n_supernodes):
            plan.task_graph(k).validate_topological()

    def test_every_update_tile_gathered_somewhere(self, spd_medium):
        # Every child with update rows must appear in its parent's
        # gather inputs.
        sf = symbolic_factorize(spd_medium)
        plan = build_plan(sf, tile=4, supertile=4)
        gathered = set()
        for sp in plan.supernodes:
            for refs in sp.gather_inputs.values():
                gathered.update(ref.sn for ref in refs)
        for sn in sf.tree.supernodes:
            if sn.parent >= 0 and sn.n_update_rows > 0:
                assert sn.index in gathered
