"""Tests for the evaluation harness (experiment drivers + renderers)."""

import numpy as np
import pytest

from repro.arch.config import SpatulaConfig
from repro.eval import (
    EvalSettings,
    analyze_suite_matrix,
    figure5,
    figure6,
    figure7,
    figure14,
    figure16,
    figure17,
    figure18,
    figure19,
    figure20,
    render_cdf,
    render_cycle_breakdown,
    render_dse,
    render_power,
    render_suite_table,
    render_traffic,
    run_suite_matrix,
    table2,
    table3,
    table4,
    table5,
)
from repro.eval.experiments import gmean


TINY = EvalSettings(scale=0.25, config=SpatulaConfig.paper())


class TestSettings:
    def test_quick_settings_shrink(self):
        assert EvalSettings.quick().scale < EvalSettings().scale

    def test_gmean(self):
        assert gmean([1.0, 4.0]) == pytest.approx(2.0)
        assert gmean([]) == 0.0
        assert gmean([0.0, 2.0]) == pytest.approx(2.0)  # zeros skipped


class TestSuiteRows:
    def test_run_one_matrix(self):
        row = run_suite_matrix("bmwcra_1", TINY)
        assert row.spatula_tflops > 0
        assert row.speedup_vs_gpu > 1.0
        assert row.speedup_vs_cpu > 1.0

    def test_symbolic_cached(self):
        a = analyze_suite_matrix("bmwcra_1", TINY)
        b = analyze_suite_matrix("bmwcra_1", TINY)
        assert a is b

    def test_table3_subset(self):
        rows = table3(TINY, names=["bmwcra_1", "G3_circuit"])
        assert [r.name for r in rows] == ["bmwcra_1", "G3_circuit"]
        assert all(r.kind == "cholesky" for r in rows)
        text = render_suite_table(rows, "t3")
        assert "gmean" in text and "bmwcra_1" in text

    def test_table4_subset(self):
        rows = table4(TINY, names=["TSOPF_b2383"])
        assert rows[0].kind == "lu"

    def test_table2_area(self):
        areas = table2(TINY)
        assert areas["Total"] == pytest.approx(107.7, abs=0.5)


class TestFigures:
    def test_figure5_four_matrices(self):
        rows = figure5(TINY)
        names = [r["matrix"] for r in rows]
        assert names == ["atmosmodd", "ML_Geer", "human_gene1", "FullChip"]
        for r in rows:
            assert r["gpu_gflops"] > 0 and r["cpu_gflops"] > 0

    def test_figure6_cdfs(self):
        out = figure6(TINY)
        for name, (sizes, cdf) in out.items():
            assert np.all(np.diff(sizes) >= 0)
            assert cdf[-1] == pytest.approx(1.0)
            assert np.all(np.diff(cdf) >= -1e-12)

    def test_figure7_curve_shape(self):
        sizes, curve = figure7()
        assert curve[-1] == pytest.approx(7000.0)
        assert np.all(np.diff(curve) >= 0)
        # Half rate at half the saturation size.
        idx = np.searchsorted(sizes, 10000)
        assert curve[idx] == pytest.approx(3500.0, rel=0.1)

    def test_figure14_policies(self):
        rows = figure14(TINY, names=["bmwcra_1"])
        entry = rows[0]
        assert entry["intra+inter"] >= entry["intra"] * 0.99
        assert entry["intra+inter"] >= entry["inter"] * 0.99

    def test_figure16_17_18_renderers(self):
        rows = table3(TINY, names=["bmwcra_1"])
        bd = figure16(rows)
        assert bd[0]["stalled"] >= 0
        assert "bmwcra_1" in render_cycle_breakdown(bd, "f16")
        tr = figure17(rows)
        assert tr[0]["total_gb"] > 0
        assert "GB/s" in render_traffic(tr, "f17")
        pw = figure18(rows)
        assert pw[0]["Total"] > 0
        assert "W" in render_power(pw, "f18")

    def test_figure19_concurrency(self):
        out = figure19(TINY, names=["bmwcra_1"])
        levels, cdf = out["bmwcra_1"]
        assert cdf[-1] == pytest.approx(1.0)
        text = render_cdf("bmwcra_1", levels, cdf, "sn")
        assert "bmwcra_1" in text

    def test_figure20_dse(self):
        points = figure20(
            TINY, names=["bmwcra_1"],
            sweep=[(8, 16, 4.0, 1), (32, 16, 16.0, 2)],
        )
        assert len(points) == 2
        small, selected = sorted(points, key=lambda p: p["area_mm2"])
        assert selected["selected"]
        assert small["area_mm2"] < selected["area_mm2"]
        assert "selected" in render_dse(points, "f20")

    def test_table5_gpu_generations(self):
        rows = table5(TINY, names=["TSOPF_b2383", "human_gene1"])
        names = [r["gpu"] for r in rows]
        assert names == ["V100", "A100", "H100"]
        # Utilization drops on H100 (the paper's observation).
        assert rows[2]["gmean_util_pct"] < rows[0]["gmean_util_pct"]
