"""Tests for numeric execution inside the simulator (TileExecutor).

These are the deepest end-to-end checks in the suite: the simulator's
dynamically scheduled task stream must compute a numerically correct
factorization under every policy, emission order, and configuration.
"""

import numpy as np
import pytest

from repro.arch.config import SpatulaConfig
from repro.arch.functional import TileExecutor
from repro.arch.sim import SpatulaSim, simulate
from repro.numeric import multifrontal_cholesky, multifrontal_lu
from repro.sparse import circuit_like
from repro.symbolic import symbolic_factorize
from repro.tasks.plan import build_plan


def run_checked(matrix, kind="cholesky", config=None, **symbolic_kw):
    config = config or SpatulaConfig.tiny()
    symbolic = symbolic_factorize(matrix, kind=kind, **symbolic_kw)
    plan = build_plan(symbolic, tile=config.tile,
                      supertile=config.supertile)
    executor = TileExecutor(plan, matrix)
    report = SpatulaSim(plan, config, executor=executor).run()
    return report, executor


class TestCholeskyNumerics:
    @pytest.mark.parametrize(
        "fixture", ["spd_small", "spd_medium", "spd_irregular",
                    "spd_dense_ish"]
    )
    def test_simulated_factor_correct(self, fixture, request):
        matrix = request.getfixturevalue(fixture)
        _, executor = run_checked(matrix)
        assert executor.verify() < 1e-9

    def test_matches_functional_model(self, spd_medium):
        _, executor = run_checked(spd_medium)
        symbolic = executor.plan.symbolic
        functional = multifrontal_cholesky(spd_medium, symbolic)
        sim_l = executor.extract_lower().to_dense()
        ref_l = functional.to_csc().to_dense()
        assert np.allclose(sim_l, ref_l, atol=1e-10)

    def test_with_amalgamation(self, spd_medium):
        _, executor = run_checked(spd_medium, relax_small=16,
                                  relax_ratio=0.6, force_small=48)
        assert executor.verify() < 1e-9

    @pytest.mark.parametrize("policy", ["intra+inter", "intra", "inter"])
    def test_all_policies_numerically_correct(self, policy, spd_medium):
        cfg = SpatulaConfig.tiny(policy=policy)
        _, executor = run_checked(spd_medium, config=cfg)
        assert executor.verify() < 1e-9

    @pytest.mark.parametrize("order", ["bf", "rowmajor"])
    def test_emission_orders_equivalent(self, order, spd_medium):
        cfg = SpatulaConfig.tiny(order=order)
        _, executor = run_checked(spd_medium, config=cfg)
        assert executor.verify() < 1e-9

    def test_dataflow_window_numerically_correct(self, spd_medium):
        cfg = SpatulaConfig.tiny(dataflow_window=16)
        _, executor = run_checked(spd_medium, config=cfg)
        assert executor.verify() < 1e-9

    def test_small_supertiles_correct(self, spd_medium):
        cfg = SpatulaConfig.tiny(supertile=2)
        _, executor = run_checked(spd_medium, config=cfg)
        assert executor.verify() < 1e-9

    def test_larger_tile_config(self, spd_medium):
        cfg = SpatulaConfig.small()  # tile=8
        _, executor = run_checked(spd_medium, config=cfg)
        assert executor.verify() < 1e-9


class TestLUNumerics:
    def test_simulated_lu_correct(self, unsym_small):
        _, executor = run_checked(unsym_small, kind="lu")
        assert executor.verify() < 1e-8

    def test_matches_functional_lu(self, unsym_small):
        _, executor = run_checked(unsym_small, kind="lu")
        symbolic = executor.plan.symbolic
        functional = multifrontal_lu(unsym_small, symbolic)
        ref_l, ref_u = functional.to_csc()
        assert np.allclose(executor.extract_lower().to_dense(),
                           ref_l.to_dense(), atol=1e-9)
        assert np.allclose(executor.extract_upper().to_dense(),
                           ref_u.to_dense(), atol=1e-9)

    def test_structurally_symmetric_lu(self, spd_medium):
        _, executor = run_checked(spd_medium, kind="lu")
        assert executor.verify() < 1e-9

    def test_circuit_matrix(self):
        matrix = circuit_like(200, hub_fraction=0.1, seed=13)
        _, executor = run_checked(matrix, kind="lu")
        assert executor.verify() < 1e-8

    def test_extract_upper_rejected_for_cholesky(self, spd_small):
        _, executor = run_checked(spd_small)
        with pytest.raises(ValueError):
            executor.extract_upper()


class TestSimulateConvenience:
    def test_check_numerics_flag(self, spd_small):
        report = simulate(spd_small, config=SpatulaConfig.tiny(),
                          check_numerics=True)
        assert report.cycles > 0

    def test_executor_counts_all_tasks(self, spd_medium):
        report, executor = run_checked(spd_medium)
        assert executor.tasks_executed == report.n_tasks

    def test_verify_detects_corruption(self, spd_small):
        _, executor = run_checked(spd_small)
        # Corrupt one pivot tile and ensure verification fails.
        some_ref = next(
            ref for ref in executor._tiles
            if ref.block_col == 0 and ref.block_row == 0
        )
        executor._tiles[some_ref][0, 0] += 1.0
        with pytest.raises(AssertionError):
            executor.verify()

    def test_timing_unaffected_by_execution(self, spd_medium):
        cfg = SpatulaConfig.tiny()
        plain = simulate(spd_medium, config=cfg)
        checked = simulate(spd_medium, config=cfg, check_numerics=True)
        assert plain.cycles == checked.cycles
