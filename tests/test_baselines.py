"""Tests for the GPU and CPU baseline models."""

import numpy as np
import pytest

from repro.baselines import (
    CPU_ZEN2_32C,
    CPUModel,
    GPU_H100,
    GPU_V100,
    GPUModel,
    cpu_core_roofline,
    gpu_dense_roofline,
)
from repro.baselines.gpu import _list_schedule_makespan
from repro.sparse import circuit_like, grid_laplacian_3d, random_spd
from repro.symbolic import symbolic_factorize


class TestRoofline:
    def test_saturates_at_peak(self):
        curve = gpu_dense_roofline()
        assert curve.rate(20000) == pytest.approx(7000.0)
        assert curve.rate(100000) == pytest.approx(7000.0)

    def test_linear_ramp_below_saturation(self):
        # Figure 7: "drops linearly below 10000".
        curve = gpu_dense_roofline()
        assert curve.rate(10000) == pytest.approx(3500.0)
        assert curve.rate(5000) == pytest.approx(1750.0)

    def test_floor_for_tiny_kernels(self):
        curve = gpu_dense_roofline()
        assert curve.rate(1) >= curve.floor_gflops

    def test_cpu_saturates_much_earlier(self):
        gpu = gpu_dense_roofline()
        cpu = cpu_core_roofline()
        # At front size 300, a CPU core is near peak; the GPU is at ~1.5%.
        assert cpu.utilization(300) > 0.9
        assert gpu.utilization(300) < 0.05

    def test_curve_vectorized(self):
        curve = gpu_dense_roofline()
        sizes = np.array([1000, 2000, 30000])
        out = curve.curve(sizes)
        assert out.shape == (3,)
        assert np.all(np.diff(out) >= 0)


class TestListSchedule:
    def test_empty(self):
        assert _list_schedule_makespan([], 4) == 0.0

    def test_single_kernel(self):
        assert _list_schedule_makespan([(2.0, 3)], 8) == 2.0

    def test_parallel_fits(self):
        assert _list_schedule_makespan([(1.0, 2), (1.0, 2)], 4) == 1.0

    def test_serializes_when_over_capacity(self):
        assert _list_schedule_makespan([(1.0, 4), (1.0, 4)], 4) == 2.0

    def test_imbalance_visible(self):
        # One long kernel dominates a batch of short ones (Figure 8).
        kernels = [(10.0, 1)] + [(0.1, 1)] * 10
        assert _list_schedule_makespan(kernels, 16) == 10.0

    def test_width_clamped_to_capacity(self):
        assert _list_schedule_makespan([(1.0, 100)], 8) == 1.0


class TestGPUModel:
    def test_runs_and_reports(self, spd_medium):
        sf = symbolic_factorize(spd_medium)
        result = GPUModel(GPU_V100).run(sf)
        assert result.seconds > 0
        assert result.gflops > 0
        assert result.n_batches > 0

    def test_big_fronts_much_faster_than_small(self):
        # One near-dense front vs a deep tree of tiny fronts.
        big = symbolic_factorize(random_spd(400, density=0.15, seed=1),
                                 ordering="amd")
        small = symbolic_factorize(
            circuit_like(900, hub_fraction=0.05, seed=2), kind="lu",
            ordering="amd")
        gpu = GPUModel(GPU_V100)
        assert gpu.run(big).gflops > gpu.run(small).gflops

    def test_gflops_below_peak(self, spd_medium):
        sf = symbolic_factorize(spd_medium)
        assert GPUModel(GPU_V100).run(sf).gflops < GPU_V100.peak_gflops

    def test_batches_bounded_by_tree_height(self, spd_medium):
        sf = symbolic_factorize(spd_medium)
        result = GPUModel(GPU_V100).run(sf)
        assert result.n_batches <= sf.n_supernodes

    def test_newer_gpus_faster_but_less_utilized(self, spd_dense_ish):
        sf = symbolic_factorize(random_spd(200, density=0.05, seed=9))
        v100 = GPUModel(GPU_V100).run(sf)
        h100 = GPUModel(GPU_H100).run(sf)
        assert h100.seconds <= v100.seconds
        assert h100.gflops / GPU_H100.peak_gflops \
            <= v100.gflops / GPU_V100.peak_gflops

    def test_component_times_sum_sanely(self, spd_medium):
        sf = symbolic_factorize(spd_medium)
        r = GPUModel(GPU_V100).run(sf)
        assert r.seconds <= r.compute_seconds + r.memory_seconds \
            + r.launch_seconds + 1e-12


class TestCPUModel:
    def test_runs_and_reports(self, spd_medium):
        sf = symbolic_factorize(spd_medium)
        result = CPUModel().run(sf)
        assert result.seconds > 0
        assert result.gflops > 0

    def test_peak_bounded(self, spd_medium):
        sf = symbolic_factorize(spd_medium)
        peak = CPU_ZEN2_32C.n_cores * CPU_ZEN2_32C.core_peak_gflops
        assert CPUModel().run(sf).gflops < peak

    def test_respects_dependencies(self):
        # A chain-structured matrix has no task parallelism: time must be
        # at least the sum of its per-supernode times.
        from repro.sparse import banded_spd
        sf = symbolic_factorize(banded_spd(100, 2, seed=1),
                                ordering="natural")
        result = CPUModel().run(sf)
        assert result.critical_path_seconds >= \
            sf.n_supernodes * CPU_ZEN2_32C.task_overhead_s * 0.9

    def test_parallel_tree_beats_chain(self):
        # Same total work, different tree shape.
        chain = symbolic_factorize(
            __import__("repro.sparse", fromlist=["banded_spd"])
            .banded_spd(256, 2, seed=1), ordering="natural")
        bushy = symbolic_factorize(grid_laplacian_3d(6, seed=1),
                                   ordering="nd")
        cpu = CPUModel()
        chain_eff = cpu.run(chain).seconds / max(1, chain.flops)
        bushy_eff = cpu.run(bushy).seconds / max(1, bushy.flops)
        assert bushy_eff < chain_eff


class TestCrossModel:
    def test_cpu_beats_gpu_on_circuit(self):
        # The Figure 5 FullChip story: tiny supernodes favor the CPU.
        sf = symbolic_factorize(circuit_like(900, hub_fraction=0.05, seed=3),
                                kind="lu", ordering="amd")
        gpu = GPUModel(GPU_V100).run(sf)
        cpu = CPUModel().run(sf)
        assert cpu.seconds < gpu.seconds

    def test_gpu_beats_cpu_on_large_fronts(self):
        sf = symbolic_factorize(random_spd(400, density=0.1, seed=4),
                                ordering="amd")
        gpu = GPUModel(GPU_V100).run(sf)
        cpu = CPUModel().run(sf)
        assert gpu.seconds < cpu.seconds
