"""Tests for the numeric-phase schedulers (:mod:`repro.numeric.schedule`).

Covers the subtree partitioner and level-set edge cases (empty forest,
chains, stars, multi-root forests), scheduler bit-identity across the
verify fuzz-suite generator families at several worker counts, prompt
exception propagation (the ``as_completed`` regression fix), DAG
dependence ordering and error handling, process-safe attribution, and
the ``numeric.sched.*`` metrics surface.
"""

import threading
import time

import numpy as np
import pytest

from repro.numeric import SparseSolver, multifrontal_cholesky
from repro.numeric.engine import last_factor_attribution
from repro.numeric.schedule import (
    SCHEDULER_NAMES,
    partition_subtrees,
    run_dag,
    run_level_scheduled,
    run_scheduled,
    subtree_work,
)
from repro.numeric.tuning import NumericTuning, resolve_scheduler
from repro.obs import telemetry
from repro.obs.metrics import global_registry
from repro.symbolic.analyze import symbolic_factorize
from repro.symbolic.etree import etree_level_sets
from repro.verify.generators import build_case, family_names


# -- partition invariants ------------------------------------------------------


def _children_of(sn_parent):
    children = [[] for _ in range(len(sn_parent))]
    for i, p in enumerate(sn_parent):
        if int(p) >= 0:
            children[int(p)].append(i)
    return children


def _check_partition(sn_parent, subtrees, top):
    """The structural contract of partition_subtrees.

    Disjoint exact cover; every subtree is descendant-closed (a node's
    children stay in its subtree); the top set is upward-closed (a top
    node's parent is top or a forest root's absence); each subtree root's
    parent lies in the top set or is a forest root.
    """
    n = len(sn_parent)
    seen = np.zeros(n, dtype=int)
    for part in subtrees:
        seen[part] += 1
    seen[top] += 1
    assert np.all(seen == 1), "nodes must be covered exactly once"

    top_set = set(int(i) for i in top)
    children = _children_of(sn_parent)
    for part in subtrees:
        part_set = set(int(i) for i in part)
        root = max(part_set)
        for i in part_set:
            if i != root:
                assert int(sn_parent[i]) in part_set
            for c in children[i]:
                assert c in part_set, "subtrees must be descendant-closed"
        parent = int(sn_parent[root])
        assert parent == -1 or parent in top_set
    for i in top_set:
        p = int(sn_parent[i])
        assert p == -1 or p in top_set, "top must be upward-closed"


def test_partition_empty_forest():
    subtrees, top = partition_subtrees(
        np.empty(0, dtype=np.int64), np.empty(0), 4)
    assert subtrees == []
    assert top.size == 0


def test_partition_single_chain():
    n = 40
    parent = np.arange(1, n + 1, dtype=np.int64)
    parent[-1] = -1
    subtrees, top = partition_subtrees(parent, np.ones(n), 4)
    _check_partition(parent, subtrees, top)
    # A chain has no subtree parallelism: exactly one subtree (a
    # prefix), the rest sequential top.
    assert len(subtrees) == 1
    assert top.size > 0


def test_partition_star():
    n = 33
    parent = np.full(n, n - 1, dtype=np.int64)
    parent[-1] = -1
    subtrees, top = partition_subtrees(parent, np.ones(n), 4)
    _check_partition(parent, subtrees, top)
    # The hub must be split: it lands in the top set, leaves become
    # independent single-node subtrees.
    assert list(top) == [n - 1]
    assert len(subtrees) >= 2
    assert all(part.size == 1 for part in subtrees)


def test_partition_multi_root_forest():
    # Two disjoint binary-ish trees plus an isolated root.
    parent = np.array([2, 2, 4, 4, -1, 7, 7, 9, 9, -1, -1],
                      dtype=np.int64)
    subtrees, top = partition_subtrees(parent, np.ones(len(parent)), 3)
    _check_partition(parent, subtrees, top)
    covered = sorted(
        int(i) for part in subtrees for i in part) + sorted(
        int(i) for i in top)
    assert sorted(covered) == list(range(len(parent)))


def test_partition_all_zero_work():
    parent = np.array([2, 2, -1], dtype=np.int64)
    subtrees, top = partition_subtrees(parent, np.zeros(3), 2)
    _check_partition(parent, subtrees, top)


def test_subtree_work_accumulates_into_ancestors():
    #   0   1
    #    \ /
    #     2     3
    #      \   /
    #        4
    parent = np.array([2, 2, 4, 4, -1], dtype=np.int64)
    work = np.array([1.0, 2.0, 4.0, 8.0, 16.0])
    total = subtree_work(parent, work)
    assert total.tolist() == [1.0, 2.0, 7.0, 8.0, 31.0]


# -- etree level-set edge cases ------------------------------------------------


def test_level_sets_empty():
    assert etree_level_sets(np.empty(0, dtype=np.int64)) == []


def test_level_sets_single_chain():
    n = 9
    parent = np.arange(1, n + 1, dtype=np.int64)
    parent[-1] = -1
    levels = etree_level_sets(parent)
    assert len(levels) == n
    assert all(len(level) == 1 for level in levels)
    assert [int(level[0]) for level in levels] == list(range(n))


def test_level_sets_star():
    n = 12
    parent = np.full(n, n - 1, dtype=np.int64)
    parent[-1] = -1
    levels = etree_level_sets(parent)
    assert len(levels) == 2
    assert list(levels[0]) == list(range(n - 1))
    assert list(levels[1]) == [n - 1]


def test_level_sets_multi_root_forest():
    # Two stars: {0,1}->2 and {3,4}->5.
    parent = np.array([2, 2, -1, 5, 5, -1], dtype=np.int64)
    levels = etree_level_sets(parent)
    assert len(levels) == 2
    assert list(levels[0]) == [0, 1, 3, 4]
    assert list(levels[1]) == [2, 5]


# -- bit-identity across schedulers and worker counts --------------------------


def _factor_bits(matrix, kind, scheduler, workers):
    solver = SparseSolver(matrix, kind=kind, workers=workers,
                          scheduler=scheduler)
    lower, upper = solver.factor_csc()
    parts = [lower.indptr, lower.indices, lower.data]
    if upper is not None:
        parts += [upper.indptr, upper.indices, upper.data]
    return parts


def _assert_same_bits(ref, got, label):
    assert len(ref) == len(got)
    for a, b in zip(ref, got):
        assert np.array_equal(a, b), f"factor differs for {label}"


@pytest.mark.parametrize("family", [
    f for f in family_names() if not f.startswith("struct_singular")
])
def test_bit_identity_fuzz_families(family):
    """level/dag at workers 1/2/4 produce bitwise-equal factors on every
    non-singular fuzz-suite generator family."""
    for seed in (3, 11):
        case = build_case(family, seed, max_n=36)
        assert case.expect == "ok"
        ref = _factor_bits(case.matrix, case.kind, "level", workers=1)
        for scheduler in ("level", "dag"):
            for workers in (1, 2, 4):
                got = _factor_bits(case.matrix, case.kind, scheduler,
                                   workers)
                _assert_same_bits(
                    ref, got,
                    f"{family}@{seed} {scheduler}/w{workers}")


def test_bit_identity_procs_cholesky(spd_medium):
    """The shared-memory process backend matches the serial factor
    bitwise (and actually takes the multi-subtree fork path)."""
    ref = _factor_bits(spd_medium, "cholesky", "level", workers=1)
    for workers in (2, 4):
        got = _factor_bits(spd_medium, "cholesky", "procs", workers)
        _assert_same_bits(ref, got, f"procs/w{workers}")
    att = last_factor_attribution()
    assert att["schedule"]["scheduler"] == "procs"
    # The 3-D grid is wide enough that this must be the real fork path,
    # not the DAG fallback.
    assert att["schedule"]["n_subtrees"] >= 2
    assert att["schedule"]["top_tasks"] >= 1


def test_bit_identity_procs_lu(unsym_small):
    ref = _factor_bits(unsym_small, "lu", "level", workers=1)
    for workers in (2, 4):
        got = _factor_bits(unsym_small, "lu", "procs", workers)
        _assert_same_bits(ref, got, f"lu procs/w{workers}")


def test_run_scheduled_rejects_unknown_scheduler(spd_small):
    symbolic = symbolic_factorize(spd_small)
    with pytest.raises(ValueError, match="scheduler"):
        multifrontal_cholesky(spd_small, symbolic, workers=2,
                              scheduler="bogus")


def test_tuning_scheduler_validation():
    with pytest.raises(ValueError):
        NumericTuning(scheduler="bogus")
    with pytest.raises(ValueError):
        resolve_scheduler("bogus")
    for name in SCHEDULER_NAMES:
        assert resolve_scheduler(name) == name


# -- exception latency (the as_completed regression fix) -----------------------


def test_level_scheduled_failure_propagates_promptly():
    """A failing task must raise as soon as it completes, not after the
    whole level drains.  24 sleeping tasks at 0.3 s over 4 workers take
    >= 1.8 s to drain fully; the prompt path cancels the queue and only
    waits out the handful already running."""
    n = 25
    levels = [np.arange(n)]

    def task(i):
        if i == 0:
            raise RuntimeError("boom")
        time.sleep(0.3)

    t0 = time.perf_counter()
    with pytest.raises(RuntimeError, match="boom"):
        run_level_scheduled(levels, n, task, workers=4, trace=False)
    elapsed = time.perf_counter() - t0
    assert elapsed < 1.2, f"failure took {elapsed:.2f}s to surface"


# -- DAG scheduler on synthetic trees ------------------------------------------


class _FakeSupernode:
    def __init__(self, children):
        self.children = children


class _FakeJob:
    """Minimal SupernodeJob stand-in recording completion order."""

    def __init__(self, sn_parent, fail_at=None, sleep_s=0.0):
        self.sn_parent = np.asarray(sn_parent, dtype=np.int64)
        self.n_supernodes = len(self.sn_parent)
        self.supernodes = [
            _FakeSupernode(children)
            for children in _children_of(self.sn_parent)
        ]
        self.fail_at = fail_at
        self.sleep_s = sleep_s
        self.order = []
        self._lock = threading.Lock()

    def compute(self, i):
        if i == self.fail_at:
            raise RuntimeError(f"task {i} failed")
        if self.sleep_s:
            time.sleep(self.sleep_s)
        with self._lock:
            self.order.append(int(i))


def _random_tree(n, seed):
    rng = np.random.default_rng(seed)
    parent = np.full(n, -1, dtype=np.int64)
    for i in range(n - 1):
        parent[i] = int(rng.integers(i + 1, n))
    return parent


def test_dag_respects_dependencies():
    parent = _random_tree(60, seed=42)
    job = _FakeJob(parent, sleep_s=0.001)
    stats = run_dag(job, workers=4)
    assert sorted(job.order) == list(range(60))
    position = {node: k for k, node in enumerate(job.order)}
    for i in range(60):
        p = int(parent[i])
        if p >= 0:
            assert position[i] < position[p], \
                f"node {i} must finish before its parent {p}"
    assert stats.dispatched == 60
    assert sum(stats.worker_tasks) == 60
    assert len(stats.ready_depth) == 60


def test_dag_inline_path_is_ascending():
    job = _FakeJob(_random_tree(20, seed=7))
    stats = run_dag(job, workers=1)
    assert job.order == list(range(20))
    assert stats.inline_tasks == 20
    assert stats.dispatched == 0


def test_dag_node_subset():
    #  0 -> 2 <- 1,   3 -> 4;  run only the upper part {2, 4} after
    #  pretending the leaves already completed elsewhere.
    parent = np.array([2, 2, -1, 4, -1], dtype=np.int64)
    job = _FakeJob(parent)
    stats = run_dag(job, workers=2, nodes=[2, 4])
    assert sorted(job.order) == [2, 4]
    assert stats.dispatched == 2


def test_dag_error_propagates_without_hanging():
    parent = _random_tree(40, seed=3)
    job = _FakeJob(parent, fail_at=5, sleep_s=0.001)
    with pytest.raises(RuntimeError, match="task 5 failed"):
        run_dag(job, workers=4)


def test_run_scheduled_unknown_name():
    job = _FakeJob(_random_tree(5, seed=1))
    with pytest.raises(ValueError):
        run_scheduled(job, "nope", workers=2)


# -- process-safe attribution (satellite: _last_attribution) -------------------


def test_worker_role_never_writes_attribution_global(
        tmp_path, spd_small, monkeypatch):
    """Worker-role processes publish attribution through the telemetry
    sink only; the module-global last-factorization view stays untouched
    and the collector merges the sink views back together."""
    import repro.numeric.engine as engine

    monkeypatch.setattr(engine, "_last_attribution", None)
    telemetry.start(tmp_path, role="worker", heartbeat_s=None)
    symbolic = symbolic_factorize(spd_small)
    multifrontal_cholesky(spd_small, symbolic, workers=2, scheduler="dag")
    assert last_factor_attribution() is None
    telemetry.stop(dump_registry=False)

    timeline = telemetry.collect(tmp_path)
    views = timeline.attributions()
    assert len(views) == 1
    assert views[0]["role"] == "worker"
    assert views[0]["schedule"]["scheduler"] == "dag"
    merged = timeline.merged_numeric_attribution()
    assert merged is not None
    assert merged["n_processes"] == 1
    assert merged["factorizations"] == 1
    assert merged["seconds"] > 0.0


def test_main_role_attribution_has_schedule_evidence(spd_medium):
    symbolic = symbolic_factorize(spd_medium)
    multifrontal_cholesky(spd_medium, symbolic, workers=2,
                          scheduler="dag")
    att = last_factor_attribution()
    assert att is not None
    sched = att["schedule"]
    assert sched["scheduler"] == "dag"
    assert sched["workers"] == 2
    assert sched["dispatched"] > 0
    assert sched["ready_depth"]["max"] >= 1
    assert len(sched["ready_depth"]["series"]) == sched["dispatched"]
    assert sched["dispatch_latency_ms"]["mean"] >= 0.0
    assert len(sched["worker_busy_s"]) == len(sched["worker_idle_s"])


# -- scheduler metrics surface -------------------------------------------------


def test_sched_metrics_exported(spd_medium):
    symbolic = symbolic_factorize(spd_medium)
    multifrontal_cholesky(spd_medium, symbolic, workers=2,
                          scheduler="dag")
    snap = global_registry().snapshot()
    assert snap["numeric.sched.backend"] == SCHEDULER_NAMES.index("dag")
    assert snap["numeric.sched.tasks.dag"] == symbolic.tree.n_supernodes
    for name in (
        "numeric.sched.ready_depth.mean",
        "numeric.sched.ready_depth.max",
        "numeric.sched.dispatch_latency_ms.mean",
        "numeric.sched.dispatch_latency_ms.max",
        "numeric.sched.idle_s",
        "numeric.sched.worker_tasks.imbalance",
    ):
        assert name in snap


def test_sched_metrics_watched():
    from repro.obs.artifact import WATCHED_METRICS

    for name, direction in [
        ("numeric.sched.idle_s", "lower"),
        ("numeric.sched.dispatch_latency_ms.mean", "lower"),
        ("numeric.sched.ready_depth.mean", "higher"),
        ("numeric.sched.worker_tasks.imbalance", "lower"),
        ("numeric.speedup.dag", "higher"),
        ("numeric.speedup.procs", "higher"),
    ]:
        assert WATCHED_METRICS[name] == direction
