"""Unit tests for iterative refinement (repro.numeric.refinement)."""

import numpy as np
import pytest

from repro.numeric import SparseSolver
from repro.numeric.refinement import iterative_refinement
from repro.verify.generators import ill_conditioned_spd, random_spd


def _weak_solver(matrix, precision=np.float32):
    """An intentionally low-precision direct solve (the classic
    mixed-precision refinement setup: cheap solve + refinement sweeps)."""
    dense = matrix.to_dense().astype(precision)

    def solve(r):
        return np.linalg.solve(dense, r.astype(precision)).astype(np.float64)

    return solve


class TestConvergence:
    def test_recovers_double_precision_from_single(self):
        rng = np.random.default_rng(0)
        m = random_spd(rng, 24)
        b = rng.standard_normal(24)
        result = iterative_refinement(m, _weak_solver(m), b)
        assert result.converged
        assert result.iterations >= 1  # float32 alone cannot hit 1e-14
        assert result.residual_norm <= 1e-14
        # History tracks the relative residual of every sweep.
        assert len(result.history) == result.iterations + 1
        assert result.history[-1] <= result.history[0]

    def test_converges_on_ill_conditioned_system(self):
        from repro.verify.oracle import backward_error, backward_tolerance

        rng = np.random.default_rng(1)
        m = ill_conditioned_spd(rng, 20, log_cond=8.0)
        b = rng.standard_normal(20)
        solver = SparseSolver(m, kind="cholesky")
        # At cond ~1e8 the solution norm dwarfs ||b||, so the relative
        # residual bottoms out around cond * eps — ask for that, and judge
        # final quality by the conditioning-independent backward error.
        result = solver.solve_refined(m, b, tolerance=1e-8)
        assert result.converged
        assert result.history[-1] <= result.history[0]
        assert backward_error(m, result.x, b) <= backward_tolerance(20)

    def test_exact_solver_converges_without_sweeps(self):
        rng = np.random.default_rng(2)
        m = random_spd(rng, 16)
        x_true = rng.standard_normal(16)
        b = m.matvec(x_true)
        result = iterative_refinement(m, lambda r: np.linalg.solve(
            m.to_dense(), r), b)
        assert result.converged
        assert result.iterations <= 1


class TestIterationCap:
    def test_max_iterations_is_respected(self):
        rng = np.random.default_rng(3)
        m = random_spd(rng, 12)
        b = rng.standard_normal(12)
        dense = m.to_dense()
        # Damped solve: each sweep cuts the error by exactly 4x — steady
        # progress (never hits the stagnation early-exit) but far too slow
        # to reach 1e-14 within the cap.
        damped = lambda r: 0.75 * np.linalg.solve(dense, r)  # noqa: E731
        result = iterative_refinement(m, damped, b, max_iterations=5)
        assert result.iterations == 5
        assert not result.converged

    def test_stagnation_stops_early(self):
        rng = np.random.default_rng(4)
        m = random_spd(rng, 12)
        b = rng.standard_normal(12)
        dense = m.to_dense()
        # Barely-damped solve: error shrinks by only 10% per sweep, which
        # the stagnation check treats as "refinement cannot help".
        sloppy = lambda r: 0.1 * np.linalg.solve(dense, r)  # noqa: E731
        result = iterative_refinement(m, sloppy, b, max_iterations=50)
        assert result.iterations < 50
        assert not result.converged


class TestPanels:
    def test_krhs_panel_refines_all_columns(self):
        rng = np.random.default_rng(5)
        m = random_spd(rng, 18)
        B = rng.standard_normal((18, 4))
        result = iterative_refinement(m, _weak_solver(m), B)
        assert result.x.shape == (18, 4)
        assert result.converged
        # Each column individually solves its system.
        for j in range(4):
            r = m.matvec(result.x[:, j]) - B[:, j]
            assert np.linalg.norm(r) / np.linalg.norm(B[:, j]) < 1e-12

    def test_panel_matches_per_column_refinement(self):
        rng = np.random.default_rng(6)
        m = random_spd(rng, 14)
        B = rng.standard_normal((14, 3))
        solver = SparseSolver(m, kind="cholesky")
        panel = solver.solve_refined(m, B).x
        for j in range(3):
            single = solver.solve_refined(m, B[:, j]).x
            assert np.allclose(panel[:, j], single, rtol=1e-12, atol=1e-13)

    def test_bad_rank_rejected(self):
        rng = np.random.default_rng(7)
        m = random_spd(rng, 4)
        with pytest.raises(ValueError):
            iterative_refinement(m, lambda r: r,
                                 rng.standard_normal((4, 2, 2)))
