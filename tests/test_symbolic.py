"""Tests for fill structures, supernodes, assembly trees, and the
one-call symbolic factorization."""

import numpy as np
import pytest

from repro.sparse import grid_laplacian_2d
from repro.sparse.csc import CSCMatrix
from repro.symbolic import symbolic_factorize
from repro.symbolic.etree import elimination_tree
from repro.symbolic.structure import (
    cholesky_flops_from_counts,
    column_counts,
    column_structures,
    factor_nnz,
    lu_flops_from_counts,
)
from repro.symbolic.supernodes import find_supernodes


def dense_chol_pattern(dense):
    """Ground-truth fill pattern via brute-force symbolic elimination."""
    n = dense.shape[0]
    pattern = dense != 0
    np.fill_diagonal(pattern, True)
    for k in range(n):
        below = np.nonzero(pattern[k + 1:, k])[0] + k + 1
        pattern[np.ix_(below, below)] = True
    return np.tril(pattern)


class TestColumnStructures:
    @pytest.mark.parametrize(
        "fixture", ["spd_small", "spd_medium", "spd_irregular"]
    )
    def test_matches_numeric_fill(self, fixture, request):
        matrix = request.getfixturevalue(fixture)
        parent = elimination_tree(matrix)
        structs = column_structures(matrix, parent)
        pattern = dense_chol_pattern(matrix.to_dense())
        for j, struct in enumerate(structs):
            assert np.array_equal(struct, np.nonzero(pattern[:, j])[0])

    def test_structures_sorted_and_start_at_diagonal(self, spd_medium):
        parent = elimination_tree(spd_medium)
        for j, s in enumerate(column_structures(spd_medium, parent)):
            assert s[0] == j
            assert np.all(np.diff(s) > 0)

    def test_counts_consistent(self, spd_medium):
        parent = elimination_tree(spd_medium)
        counts = column_counts(spd_medium, parent)
        structs = column_structures(spd_medium, parent)
        assert np.array_equal(counts, [len(s) for s in structs])
        assert factor_nnz(spd_medium, parent) == counts.sum()

    def test_diagonal_matrix_no_fill(self):
        m = CSCMatrix.from_dense(np.diag([2.0, 3.0, 4.0]))
        assert factor_nnz(m, elimination_tree(m)) == 3

    def test_fill_monotone_in_pattern(self):
        sparse = grid_laplacian_2d(6, seed=1)
        parent = elimination_tree(sparse)
        base = factor_nnz(sparse, parent)
        # Densify: add one long-range symmetric entry.
        dense = sparse.to_dense()
        dense[0, 30] = dense[30, 0] = -0.5
        richer = CSCMatrix.from_dense(dense)
        assert factor_nnz(richer, elimination_tree(richer)) >= base


class TestFlopFormulas:
    def test_dense_matrix_flops_cubic(self):
        n = 30
        counts = np.arange(n, 0, -1)  # dense lower triangle
        flops = cholesky_flops_from_counts(counts)
        assert abs(flops - n ** 3 / 3) / (n ** 3 / 3) < 0.2

    def test_lu_roughly_double_cholesky(self):
        counts = np.arange(50, 0, -1)
        chol = cholesky_flops_from_counts(counts)
        lu = lu_flops_from_counts(counts)
        assert 1.5 < lu / chol < 2.5

    def test_diagonal_minimal(self):
        counts = np.ones(10, dtype=np.int64)
        assert cholesky_flops_from_counts(counts) == 10  # one sqrt each


class TestSupernodes:
    def _setup(self, matrix, **kw):
        parent = elimination_tree(matrix)
        structs = column_structures(matrix, parent)
        return find_supernodes(parent, structs, **kw), structs

    def test_columns_partitioned(self, spd_medium):
        sns, _ = self._setup(spd_medium)
        covered = np.zeros(spd_medium.n_cols, dtype=bool)
        for sn in sns:
            cols = np.arange(sn.first_col, sn.last_col + 1)
            assert not covered[cols].any()
            covered[cols] = True
        assert covered.all()

    def test_rows_start_with_own_columns(self, spd_medium):
        sns, _ = self._setup(spd_medium)
        for sn in sns:
            assert np.array_equal(
                sn.rows[: sn.n_cols],
                np.arange(sn.first_col, sn.last_col + 1),
            )

    def test_rows_superset_of_structures(self, spd_medium):
        # Amalgamation may add rows but never lose them.
        sns, structs = self._setup(spd_medium)
        for sn in sns:
            for j in range(sn.first_col, sn.last_col + 1):
                local = structs[j]
                assert not len(np.setdiff1d(local, sn.rows,
                                            assume_unique=True))

    def test_parent_links_consistent(self, spd_irregular):
        sns, _ = self._setup(spd_irregular)
        for sn in sns:
            if sn.parent >= 0:
                assert sn.index in sns[sn.parent].children
                assert sn.parent > sn.index
            for c in sn.children:
                assert sns[c].parent == sn.index

    def test_dense_matrix_single_supernode(self):
        dense = np.eye(8) * 10 - np.ones((8, 8)) * 0.5
        sns, _ = self._setup(CSCMatrix.from_dense(dense))
        assert len(sns) == 1
        assert sns[0].n_cols == 8

    def test_diagonal_matrix_all_singletons(self):
        m = CSCMatrix.from_dense(np.diag(np.arange(1.0, 7.0)))
        sns, _ = self._setup(m)
        assert len(sns) == 6
        assert all(sn.front_size == 1 for sn in sns)

    def test_amalgamation_reduces_count(self, spd_medium):
        strict, _ = self._setup(spd_medium, relax_small=0, relax_ratio=0.0)
        relaxed, _ = self._setup(spd_medium, relax_small=16,
                                 relax_ratio=0.5, force_small=32)
        assert len(relaxed) < len(strict)

    def test_force_small_merges_regardless_of_fill(self, spd_small):
        loose, _ = self._setup(spd_small, relax_small=0, relax_ratio=0.0,
                               force_small=spd_small.n_rows)
        strict, _ = self._setup(spd_small, relax_small=0, relax_ratio=0.0)
        assert len(loose) < len(strict)


class TestSymbolicFactorize:
    def test_tree_validates(self, spd_medium):
        sf = symbolic_factorize(spd_medium, kind="cholesky")
        sf.tree.validate()

    def test_lu_on_unsymmetric(self, unsym_small):
        sf = symbolic_factorize(unsym_small, kind="lu")
        sf.tree.validate()
        assert sf.kind == "lu"

    def test_rejects_bad_kind(self, spd_small):
        with pytest.raises(ValueError):
            symbolic_factorize(spd_small, kind="qr")

    def test_rejects_rectangular(self):
        m = CSCMatrix.from_dense(np.ones((2, 3)))
        with pytest.raises(ValueError):
            symbolic_factorize(m)

    def test_explicit_perm_respected(self, spd_small):
        n = spd_small.n_rows
        perm = np.arange(n)[::-1].copy()
        sf = symbolic_factorize(spd_small, perm=perm)
        # Post-order folding may reorder further, but the result must be a
        # valid permutation and a valid analysis.
        assert sorted(sf.perm.tolist()) == list(range(n))
        sf.tree.validate()

    def test_factor_nnz_matches_numeric(self, spd_medium):
        sf = symbolic_factorize(spd_medium, kind="cholesky", ordering="amd")
        pattern = dense_chol_pattern(sf.permuted.to_dense())
        assert sf.factor_nnz == int(pattern.sum())

    def test_postordered_supernode_columns_contiguous(self, spd_medium):
        sf = symbolic_factorize(spd_medium, kind="cholesky", ordering="amd")
        # After postorder folding, each parent supernode's first column is
        # right after some child's last column (when it has children).
        for sn in sf.tree.supernodes:
            if sn.children:
                assert any(
                    sf.tree.supernodes[c].last_col + 1 == sn.first_col
                    for c in sn.children
                )

    def test_supernode_sizes_and_flops_align(self, spd_medium):
        sf = symbolic_factorize(spd_medium)
        assert len(sf.supernode_sizes()) == sf.n_supernodes
        assert len(sf.supernode_flops()) == sf.n_supernodes
        assert sf.supernode_flops().sum() > 0

    def test_ordering_label_stored(self, spd_small):
        sf = symbolic_factorize(spd_small, ordering="rcm")
        assert sf.ordering == "rcm"
