"""Tests for runtime telemetry (repro.obs.telemetry), wall-clock
profiling (repro.obs.profile), the bounded analysis cache, and the CLI
surface on top (--telemetry-dir / --profile / repro telemetry)."""

import json
import multiprocessing
import os
import threading
import time

import numpy as np
import pytest

from repro.cli import main
from repro.numeric.cache import (
    DEFAULT_CAPACITY,
    AnalysisCache,
    _capacity_from_env,
)
from repro.numeric.solver import SparseSolver
from repro.obs import RunArtifact, telemetry
from repro.obs.metrics import MetricsRegistry, global_registry
from repro.obs.profile import (
    Profiler,
    ProfileResult,
    SamplingProfiler,
    flamegraph_svg,
)
from repro.obs.spans import enable_tracing, span
from repro.obs.telemetry import (
    RunContext,
    collect,
    export_latency_metrics,
    latency_percentiles,
    list_runs,
    task_span,
    timeline_chrome_trace,
)


def _events(path):
    with open(path) as f:
        return [json.loads(line) for line in f if line.strip()]


class TestSink:
    def test_stream_is_one_jsonl_file_per_process(self, tmp_path):
        ctx = telemetry.start(tmp_path, run_id="run-t1", heartbeat_s=None)
        assert telemetry.active()
        with task_span("unit.work", item=3):
            pass
        telemetry.stop()
        assert not telemetry.active()
        path = tmp_path / f"run-t1.{os.getpid()}.jsonl"
        assert path.exists()
        events = _events(path)
        assert events[0]["t"] == "meta"
        assert events[0]["run"] == "run-t1"
        assert events[0]["pid"] == os.getpid()
        assert events[0]["role"] == "main"
        spans = [e for e in events if e["t"] == "span"]
        assert [s["name"] for s in spans] == ["unit.work"]
        assert spans[0]["run"] == "run-t1"
        assert spans[0]["attrs"] == {"item": 3}
        assert ctx.run_id == "run-t1"

    def test_tracer_spans_mirror_into_sink(self, tmp_path):
        telemetry.start(tmp_path, run_id="run-t2", heartbeat_s=None)
        with span("phase.one"):
            with span("phase.two"):
                pass
        telemetry.stop()
        events = _events(tmp_path / f"run-t2.{os.getpid()}.jsonl")
        names = [e["name"] for e in events if e["t"] == "span"]
        # Inner span completes first; both are mirrored.
        assert names == ["phase.two", "phase.one"]

    def test_env_handshake_published_and_cleared(self, tmp_path):
        telemetry.start(tmp_path, run_id="run-t3", parent_span_id="solve",
                        heartbeat_s=None)
        assert os.environ[telemetry.ENV_DIR] == str(tmp_path)
        assert os.environ[telemetry.ENV_RUN] == "run-t3"
        assert os.environ[telemetry.ENV_PARENT] == "solve"
        telemetry.stop()
        assert telemetry.ENV_RUN not in os.environ

    def test_start_is_idempotent(self, tmp_path):
        ctx1 = telemetry.start(tmp_path, heartbeat_s=None)
        ctx2 = telemetry.start(tmp_path, heartbeat_s=None)
        assert ctx1 is ctx2
        telemetry.stop()

    def test_task_span_is_noop_when_off(self):
        cm1 = task_span("anything", x=1)
        cm2 = task_span("other")
        assert cm1 is cm2            # the shared null context manager
        with cm1:
            pass

    def test_heartbeats_and_registry_dump(self, tmp_path):
        telemetry.start(tmp_path, run_id="run-t4", heartbeat_s=0.02)
        global_registry().counter("unit.count").inc(7)
        time.sleep(0.08)
        telemetry.stop()
        events = _events(tmp_path / f"run-t4.{os.getpid()}.jsonl")
        hbs = [e for e in events if e["t"] == "hb"]
        assert len(hbs) >= 2          # periodic beats + the final one
        dumps = [e for e in events if e["t"] == "counters"]
        assert dumps and dumps[-1]["counters"]["unit.count"] == 7

    def test_log_records_are_captured(self, tmp_path):
        import logging

        telemetry.start(tmp_path, run_id="run-t5", heartbeat_s=None)
        # warning(): above any ambient logger level, so the record
        # reaches the sink handler regardless of setup_logging state.
        logging.getLogger("repro.unit").warning("hello %d", 42)
        telemetry.stop()
        events = _events(tmp_path / f"run-t5.{os.getpid()}.jsonl")
        logs = [e for e in events if e["t"] == "log"]
        assert any(e["msg"] == "hello 42" for e in logs)

    def test_run_context_env_roundtrip(self, tmp_path):
        ctx = RunContext(run_id="r", telemetry_dir=str(tmp_path),
                         parent_span_id="verify")
        env = ctx.env()
        assert env[telemetry.ENV_RUN] == "r"
        assert env[telemetry.ENV_PARENT] == "verify"


def _mp_worker_job(i: int) -> int:
    """Module-level pool job (pickles by reference under fork/spawn)."""
    with task_span("mp.case", case=i):
        time.sleep(0.01)
    return os.getpid()


class TestMultiprocessing:
    def test_workers_join_run_and_emit_spans(self, tmp_path):
        telemetry.start(tmp_path, run_id="run-mp", parent_span_id="test",
                        heartbeat_s=None)
        with multiprocessing.Pool(
                2, initializer=telemetry.init_worker) as pool:
            pids = pool.map(_mp_worker_job, range(6))
        telemetry.stop()
        timeline = collect(tmp_path, run_id="run-mp")
        roles = [s.role for s in timeline.streams]
        assert roles[0] == "main"
        assert roles.count("worker") == len(set(pids))
        worker_spans = [s for stream in timeline.streams
                        if stream.role == "worker"
                        for s in stream.spans]
        assert len(worker_spans) == 6
        # Every worker event carries the parent run id; the stream
        # carries the parent span id from the env handshake.
        assert all(s["run"] == "run-mp" for s in worker_spans)
        assert all(s.parent_span_id == "test"
                   for s in timeline.streams if s.role == "worker")

    def test_init_worker_without_env_is_noop(self):
        assert telemetry.init_worker() is None
        assert not telemetry.active()


class TestCollector:
    def _write_stream(self, tmp_path, pid, wall0, perf0, spans,
                      role="worker"):
        path = tmp_path / f"run-c.{pid}.jsonl"
        with open(path, "w") as f:
            f.write(json.dumps({
                "t": "meta", "run": "run-c", "pid": pid, "tid": 1,
                "role": role, "parent": None,
                "wall": wall0, "perf": perf0}) + "\n")
            for name, start, dur in spans:
                f.write(json.dumps({
                    "t": "span", "run": "run-c", "pid": pid, "tid": 1,
                    "name": name, "start": start, "dur": dur,
                    "depth": 0, "parent": None}) + "\n")
        return path

    def test_clock_alignment_across_processes(self, tmp_path):
        # Two processes whose perf_counter origins differ wildly; the
        # wall/perf pair in the meta event rebases them onto one axis.
        self._write_stream(tmp_path, 100, wall0=1000.0, perf0=50.0,
                           spans=[("a", 50.5, 0.1)], role="main")
        self._write_stream(tmp_path, 200, wall0=1001.0, perf0=9000.0,
                           spans=[("b", 9000.2, 0.1)])
        timeline = collect(tmp_path, run_id="run-c")
        spans = timeline.spans()
        by_name = {s["name"]: s for s in spans}
        assert by_name["a"]["wall_start_s"] == pytest.approx(0.5)
        assert by_name["b"]["wall_start_s"] == pytest.approx(1.2)
        assert [s["name"] for s in spans] == ["a", "b"]

    def test_truncated_final_line_is_skipped(self, tmp_path):
        path = self._write_stream(tmp_path, 100, 1000.0, 0.0,
                                  [("a", 0.5, 0.1)], role="main")
        with open(path, "a") as f:
            f.write('{"t": "span", "run": "run-c", "pid": 100, "na')
        timeline = collect(tmp_path, run_id="run-c")
        assert len(timeline.streams[0].spans) == 1

    def test_collect_without_streams_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect(tmp_path)
        with pytest.raises(FileNotFoundError):
            collect(tmp_path, run_id="run-none")

    def test_list_runs_sorted(self, tmp_path):
        self._write_stream(tmp_path, 1, 0.0, 0.0, [])
        (tmp_path / "run-a.2.jsonl").write_text("")
        (tmp_path / "stray.txt").write_text("")
        assert list_runs(tmp_path) == ["run-a", "run-c"]
        assert list_runs(tmp_path / "missing") == []

    def test_chrome_trace_export(self, tmp_path):
        self._write_stream(tmp_path, 100, 1000.0, 0.0,
                           [("a", 0.5, 0.1)], role="main")
        self._write_stream(tmp_path, 200, 1000.0, 0.0,
                           [("b", 0.6, 0.1)])
        timeline = collect(tmp_path, run_id="run-c")
        out = tmp_path / "trace.json"
        timeline_chrome_trace(timeline, out)
        trace = json.loads(out.read_text())
        events = trace["traceEvents"]
        proc_names = [e for e in events if e["name"] == "process_name"]
        assert {e["pid"] for e in proc_names} == {100, 200}
        xs = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in xs} == {"a", "b"}
        assert all(e["args"]["run"] == "run-c" for e in xs)

    def test_merged_counters_sum_and_gauges_last_win(self):
        from repro.obs.telemetry import ProcessStream, Timeline

        s1 = ProcessStream(pid=1, role="main", run_id="r",
                           parent_span_id=None, path="x",
                           counters={"n": 2.0}, gauges={"g": 1.0})
        s2 = ProcessStream(pid=2, role="worker", run_id="r",
                           parent_span_id=None, path="y",
                           counters={"n": 3.0}, gauges={"g": 5.0})
        merged = Timeline(run_id="r", telemetry_dir=".",
                          streams=[s1, s2]).merged_counters()
        assert merged["n"] == 5.0
        assert merged["g"] == 5.0


class TestLatency:
    def test_percentiles(self):
        durations = {"solve": [0.001 * (i + 1) for i in range(100)]}
        out = latency_percentiles(durations)
        st = out["solve"]
        assert st["count"] == 100
        assert st["p50_ms"] == pytest.approx(50.5, rel=0.02)
        assert st["p99_ms"] > st["p95_ms"] > st["p50_ms"]
        assert st["max_ms"] == pytest.approx(100.0)
        assert latency_percentiles({"empty": []}) == {}

    def test_export_latency_metrics_gauges(self):
        reg = MetricsRegistry()
        summary = latency_percentiles({"numeric.solve": [0.01, 0.02]})
        export_latency_metrics(summary, registry=reg)
        snap = reg.snapshot()
        assert "latency.numeric.solve.p50_ms" in snap
        assert "latency.numeric.solve.p95_ms" in snap
        assert "latency.numeric.solve.p99_ms" in snap

    def test_latency_metrics_are_watched_by_trend_gate(self, tmp_path):
        from repro.obs import HistoryStore, check_trend

        def art(p95):
            metrics = {"latency.numeric.solve.p50_ms": p95 / 2,
                       "latency.numeric.solve.p95_ms": p95,
                       "latency.numeric.solve.p99_ms": p95 * 1.2}
            return RunArtifact(
                matrix="m", kind="cholesky", n=100, config={},
                report={}, metrics=metrics,
                created_at="2026-08-08T00:00:00")

        store = HistoryStore(tmp_path / "hist")
        for _ in range(5):
            store.add(art(10.0))
        ok = check_trend(store, art(10.2))
        assert not ok.has_regression
        bad = check_trend(store, art(25.0))
        assert bad.has_regression
        names = [v.name for v in bad.regressions]
        assert "latency.numeric.solve.p95_ms" in names


class TestTracerThreadSafety:
    def test_concurrent_spans_from_many_threads(self):
        tracer = enable_tracing()
        tracer.reset()
        n_threads, per_thread = 8, 40
        errors = []

        def work(t):
            try:
                for _ in range(per_thread):
                    with span(f"outer.t{t}"):
                        with span(f"inner.t{t}"):
                            pass
            except Exception as exc:             # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(t,))
                   for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(tracer.spans) == n_threads * per_thread * 2
        # Depth/parent chains are per-thread: an inner span's parent is
        # its own thread's outer span, never another thread's.
        for s in tracer.spans:
            if s.name.startswith("inner.t"):
                tid = s.name.split(".")[-1]
                assert s.depth == 1
                assert s.parent == f"outer.{tid}"
            else:
                assert s.depth == 0

    def test_listeners_see_every_completed_span(self):
        tracer = enable_tracing()
        tracer.reset()
        seen = []
        lock = threading.Lock()

        def listener(s):
            with lock:
                seen.append(s.name)

        tracer.add_listener(listener)
        try:
            def work(t):
                for _ in range(25):
                    with span(f"s{t}"):
                        pass

            workers = [threading.Thread(target=work, args=(t,))
                       for t in range(6)]
            for w in workers:
                w.start()
            for w in workers:
                w.join()
        finally:
            tracer.remove_listener(listener)
        assert len(seen) == 6 * 25

    def test_worker_pool_spans_stream_to_sink(self, tmp_path, spd_medium):
        # The real consumer: level-scheduled numeric workers emitting
        # concurrent spans while telemetry mirrors them to the sink.
        telemetry.start(tmp_path, run_id="run-th", heartbeat_s=None)
        solver = SparseSolver(spd_medium, workers=4)
        b = np.ones(spd_medium.n_rows)
        x = solver.solve(b)
        telemetry.stop()
        assert solver.residual_norm(spd_medium, x, b) < 1e-10
        events = _events(tmp_path / f"run-th.{os.getpid()}.jsonl")
        names = {e["name"] for e in events if e["t"] == "span"}
        assert "numeric.factorize" in names
        assert "numeric.solve" in names
        assert "numeric.level" in names       # per-level task spans


class TestArtifactTelemetrySections:
    def test_v3_roundtrip_with_telemetry_and_profile(self, tmp_path):
        telem = {"run_id": "run-x", "dir": "telemetry",
                 "n_processes": 3,
                 "latency_ms": {"numeric.solve": {
                     "count": 4, "mean_ms": 1.0, "p50_ms": 1.0,
                     "p95_ms": 2.0, "p99_ms": 2.5, "max_ms": 3.0}}}
        prof = ProfileResult(mode="cprofile", seconds=0.5,
                             top=[{"func": "f", "file": "m.py",
                                   "line": 1, "ncalls": 1,
                                   "cumtime_s": 0.4, "tottime_s": 0.1}],
                             folded={"main;f": 10})
        artifact = RunArtifact(
            matrix="m", kind="lu", n=10, config={}, report={},
            telemetry=telem, profile=prof.to_dict(),
            created_at="2026-08-08T00:00:00")
        path = tmp_path / "a.json"
        artifact.save(path)
        loaded = RunArtifact.load(path)
        assert loaded.schema_version == 3
        assert loaded.telemetry["run_id"] == "run-x"
        assert loaded.profile["mode"] == "cprofile"
        from repro.obs import render_artifact

        text = render_artifact(loaded)
        assert "run run-x (3 process(es))" in text
        assert "numeric.solve" in text

    def test_sections_absent_by_default(self, tmp_path):
        artifact = RunArtifact(matrix="m", kind="lu", n=10, config={},
                               report={})
        path = tmp_path / "a.json"
        artifact.save(path)
        data = json.loads(path.read_text())
        assert "telemetry" not in data
        assert "profile" not in data


def _busy(seconds: float) -> float:
    total = 0.0
    end = time.perf_counter() + seconds
    while time.perf_counter() < end:
        total += sum(float(i) for i in range(200))
    return total


class TestProfiler:
    def test_cprofile_mode_captures_top_functions(self):
        prof = Profiler(mode="cprofile")
        prof.start()
        _busy(0.05)
        result = prof.stop()
        assert result.mode == "cprofile"
        assert result.seconds >= 0.05
        assert result.top
        assert "_busy" in result.render_top(limit=30)

    def test_sampling_profiler_folds_stacks(self):
        if not SamplingProfiler.available():
            pytest.skip("sampling profiler needs Unix + main thread")
        prof = Profiler(mode="sample", interval=0.001)
        prof.start()
        _busy(0.2)
        result = prof.stop()
        assert result.samples > 0
        assert result.folded
        assert any("_busy" in stack for stack in result.folded)

    def test_stop_is_idempotent(self):
        prof = Profiler(mode="cprofile")
        prof.start()
        first = prof.stop()
        assert prof.stop() is first

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            Profiler(mode="magic")

    def test_result_dict_roundtrip(self):
        result = ProfileResult(mode="both", seconds=1.0,
                               top=[{"func": "f"}], folded={"a;b": 3},
                               samples=3, interval_s=0.005)
        again = ProfileResult.from_dict(result.to_dict())
        assert again.mode == "both"
        assert again.folded == {"a;b": 3}
        assert again.samples == 3

    def test_flamegraph_svg_self_contained(self):
        svg = flamegraph_svg({"main;work;leaf": 30, "main;other": 10})
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert "<script" not in svg
        assert "leaf" in svg
        # Empty input renders a placeholder, not a broken SVG.
        assert "<svg" not in flamegraph_svg({})


class TestAnalysisCacheBounds:
    def _matrices(self, count):
        from repro.sparse import grid_laplacian_2d

        return [grid_laplacian_2d(4 + i, seed=i) for i in range(count)]

    def test_lru_eviction_and_counters(self):
        cache = AnalysisCache(capacity=2)
        m1, m2, m3 = self._matrices(3)
        cache.get_or_analyze(m1, "cholesky", "amd")
        cache.get_or_analyze(m2, "cholesky", "amd")
        cache.get_or_analyze(m1, "cholesky", "amd")   # m1 now MRU
        cache.get_or_analyze(m3, "cholesky", "amd")   # evicts m2 (LRU)
        assert len(cache) == 2
        stats = cache.stats()
        assert stats == {"size": 2, "capacity": 2, "hits": 1,
                         "misses": 3, "evictions": 1}
        cache.get_or_analyze(m1, "cholesky", "amd")   # m1 survived
        assert cache.stats()["hits"] == 2
        snap = global_registry().snapshot()
        assert snap["numeric.analysis_cache.evictions"] == 1
        assert snap["numeric.analysis_cache.size"] == 2
        assert snap["numeric.analysis_cache.capacity"] == 2

    def test_set_capacity_shrinks_lru_first(self):
        cache = AnalysisCache(capacity=4)
        mats = self._matrices(4)
        analyses = [cache.get_or_analyze(m, "cholesky", "amd")
                    for m in mats]
        cache.set_capacity(1)
        assert len(cache) == 1
        assert cache.stats()["evictions"] == 3
        # The survivor is the most recently used analysis.
        assert cache.get_or_analyze(
            mats[-1], "cholesky", "amd") is analyses[-1]
        assert cache.stats()["hits"] == 1
        with pytest.raises(ValueError):
            cache.set_capacity(0)

    def test_capacity_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_ANALYSIS_CACHE_CAP", raising=False)
        assert _capacity_from_env() == DEFAULT_CAPACITY
        monkeypatch.setenv("REPRO_ANALYSIS_CACHE_CAP", "5")
        assert _capacity_from_env() == 5
        monkeypatch.setenv("REPRO_ANALYSIS_CACHE_CAP", "junk")
        assert _capacity_from_env() == DEFAULT_CAPACITY
        monkeypatch.setenv("REPRO_ANALYSIS_CACHE_CAP", "-3")
        assert _capacity_from_env() == 1


class TestCLITelemetry:
    def test_solve_with_telemetry_repeat_and_artifact(self, tmp_path,
                                                      capsys):
        tel = tmp_path / "telemetry"
        art = tmp_path / "run.json"
        assert main(["solve", "suite:bmwcra_1@0.3", "--workers", "2",
                     "--repeat", "4", "--telemetry-dir", str(tel),
                     "--metrics", str(art)]) == 0
        out = capsys.readouterr().out
        assert "telemetry: run " in out
        streams = list(tel.glob("*.jsonl"))
        assert len(streams) == 1
        loaded = RunArtifact.load(art)
        assert loaded.telemetry["n_processes"] == 1
        lat = loaded.telemetry["latency_ms"]
        assert lat["numeric.factorize"]["count"] == 4
        assert lat["numeric.solve"]["count"] == 4
        assert "latency.numeric.solve.p95_ms" in loaded.metrics
        run_id = loaded.telemetry["run_id"]
        assert (tel / f"{run_id}.trace.json").exists()
        assert (tel / f"{run_id}.report.html").exists()
        assert (tel / f"{run_id}.timeline.json").exists()

    def test_solve_procs_produces_worker_streams(self, tmp_path, capsys):
        tel = tmp_path / "telemetry"
        assert main(["solve", "suite:bmwcra_1@0.3", "--procs", "2",
                     "--repeat", "2", "--telemetry-dir", str(tel)]) == 0
        out = capsys.readouterr().out
        assert "2 process(es) x 2 warm requests" in out
        timeline = collect(tel)
        roles = [s.role for s in timeline.streams]
        assert roles.count("worker") == 2
        for stream in timeline.streams:
            if stream.role != "worker":
                continue
            names = {s["name"] for s in stream.spans}
            assert "solve.request" in names
            assert "numeric.factorize" in names
            assert all(s["run"] == timeline.run_id
                       for s in stream.spans)

    def test_telemetry_collect_and_list_verbs(self, tmp_path, capsys):
        tel = tmp_path / "telemetry"
        assert main(["solve", "suite:bmwcra_1@0.3",
                     "--telemetry-dir", str(tel)]) == 0
        capsys.readouterr()
        assert main(["telemetry", "list", "--dir", str(tel)]) == 0
        out = capsys.readouterr().out
        assert "run-" in out and "stream(s)" in out
        trace = tmp_path / "t.json"
        html = tmp_path / "t.html"
        assert main(["telemetry", "collect", "--dir", str(tel),
                     "--trace", str(trace), "--html", str(html)]) == 0
        out = capsys.readouterr().out
        assert "process stream(s)" in out
        assert trace.exists() and html.exists()
        assert "<html" in html.read_text()

    def test_collect_missing_dir_errors(self, tmp_path, capsys):
        assert main(["telemetry", "collect", "--dir",
                     str(tmp_path / "nope")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_profile_flag_writes_reports(self, tmp_path, capsys):
        tel = tmp_path / "telemetry"
        assert main(["solve", "suite:bmwcra_1@0.3", "--profile",
                     "--profile-mode", "cprofile",
                     "--telemetry-dir", str(tel)]) == 0
        out = capsys.readouterr().out
        assert "profile: " in out
        assert list(tel.glob("*.profile.txt"))

    def test_profile_without_telemetry_prints_table(self, capsys):
        assert main(["solve", "suite:bmwcra_1@0.3", "--profile",
                     "--profile-mode", "cprofile"]) == 0
        out = capsys.readouterr().out
        assert "cumtime" in out

    def test_verify_jobs_emit_case_spans(self, tmp_path, capsys):
        tel = tmp_path / "telemetry"
        assert main(["verify", "--cases", "4", "--max-n", "12",
                     "--budget", "120", "--jobs", "2",
                     "--telemetry-dir", str(tel),
                     "--out", str(tmp_path / "repros")]) == 0
        capsys.readouterr()
        timeline = collect(tel)
        case_spans = [s for stream in timeline.streams
                      for s in stream.spans
                      if s["name"] == "verify.case"]
        assert len(case_spans) == 4
        assert {s["run"] for s in case_spans} == {timeline.run_id}
