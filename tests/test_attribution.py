"""Tests for cycle accounting and critical-path analysis."""

import dataclasses

import pytest

from repro.arch.config import SpatulaConfig
from repro.arch.sim import SpatulaSim
from repro.obs.attribution import (
    BUCKETS,
    CriticalPath,
    CycleAttribution,
    _Coverage,
    _split_memory_wait,
)
from repro.sparse.suite import get_matrix, get_spec
from repro.symbolic import symbolic_factorize
from repro.tasks.plan import build_plan


def run_traced(matrix, cfg, kind="cholesky", ordering="amd"):
    symbolic = symbolic_factorize(matrix, kind=kind, ordering=ordering)
    plan = build_plan(symbolic, tile=cfg.tile, supertile=cfg.supertile)
    sim = SpatulaSim(plan, cfg, trace=True)
    report = sim.run()
    return sim, report


@pytest.fixture(scope="module")
def medium_run():
    from repro.sparse import grid_laplacian_3d

    cfg = SpatulaConfig.tiny()
    sim, report = run_traced(grid_laplacian_3d(5, seed=4), cfg)
    return sim, report, sim.attribution()


class TestConservation:
    def test_per_pe_buckets_sum_to_cycles_exactly(self, medium_run):
        sim, report, att = medium_run
        acc = att["cycles"]
        assert acc["total_cycles"] == report.cycles
        for buckets in acc["per_pe"]:
            assert set(buckets) == set(BUCKETS)
            assert sum(buckets.values()) == report.cycles

    def test_conservation_across_configs(self, spd_irregular,
                                         unsym_small):
        for matrix, kind, n_pes in [
            (spd_irregular, "cholesky", 2),
            (spd_irregular, "cholesky", 8),
            (unsym_small, "lu", 4),
        ]:
            cfg = dataclasses.replace(SpatulaConfig.tiny(), n_pes=n_pes)
            sim, report = run_traced(matrix, cfg, kind=kind)
            acc = sim.attribution()["cycles"]
            for buckets in acc["per_pe"]:
                assert sum(buckets.values()) == report.cycles

    def test_compute_matches_trace(self, medium_run):
        sim, _, att = medium_run
        acc = att["cycles"]
        traced = sum(e.duration for e in sim.trace)
        assert sum(b["compute"] for b in acc["per_pe"]) == traced
        assert sum(acc["compute_by_type"].values()) == traced

    def test_all_buckets_nonnegative(self, medium_run):
        _, _, att = medium_run
        for buckets in att["cycles"]["per_pe"]:
            assert all(v >= 0 for v in buckets.values())

    def test_requires_trace(self, spd_small, tiny_config):
        symbolic = symbolic_factorize(spd_small)
        plan = build_plan(symbolic, tile=tiny_config.tile,
                          supertile=tiny_config.supertile)
        sim = SpatulaSim(plan, tiny_config)
        sim.run()
        with pytest.raises(ValueError, match="trace"):
            sim.attribution()


class TestWhatIf:
    # Acceptance criterion: the first-order "infinite HBM bandwidth"
    # estimate must land within 25% of an *actual* re-simulation with the
    # HBM effectively infinite, on at least two suite matrices.
    @pytest.mark.parametrize("name,scale", [
        ("bmwcra_1", 0.3),
        ("Serena", 0.15),
    ])
    def test_infinite_hbm_prediction_vs_actual(self, name, scale):
        spec = get_spec(name)
        matrix = get_matrix(name, scale=scale)
        cfg = SpatulaConfig.small()
        sim, report = run_traced(matrix, cfg, ordering=spec.ordering)
        pred = sim.attribution()["cycles"]["what_if"][
            "infinite_hbm_bw_cycles"]
        cfg_inf = dataclasses.replace(cfg, hbm_gbs_per_phy=1e9)
        _, actual = run_traced(matrix, cfg_inf, ordering=spec.ordering)
        assert pred == pytest.approx(actual.cycles, rel=0.25)

    def test_estimates_bounded(self, medium_run):
        _, report, att = medium_run
        acc = att["cycles"]
        floor = max(b["compute"] for b in acc["per_pe"])
        for est in acc["what_if"].values():
            assert floor <= est <= report.cycles


class TestCriticalPath:
    def test_lower_bounds_observed_cycles(self, medium_run):
        _, report, att = medium_run
        cp = att["critical_path"]
        assert 0 < cp["cp_cycles"] <= report.cycles

    def test_lower_bound_on_every_benchmark_matrix(self):
        # Acceptance criterion: cp_cycles <= sim.cycles across the suite.
        from repro.sparse.suite import cholesky_suite, lu_suite

        cfg = SpatulaConfig.tiny()
        for spec in cholesky_suite() + lu_suite():
            matrix = get_matrix(spec.name, scale=0.06)
            kind = "cholesky" if spec.kind == "spd" else "lu"
            sim, report = run_traced(matrix, cfg, kind=kind,
                                     ordering=spec.ordering)
            cp = sim.attribution()["critical_path"]
            assert cp["cp_cycles"] <= report.cycles, spec.name

    def test_path_is_a_dependence_chain(self, medium_run):
        _, _, att = medium_run
        steps = att["critical_path"]["steps"]
        assert steps, "critical path must be non-empty"
        for a, b in zip(steps, steps[1:]):
            assert a["end"] <= b["start"] or a["end"] <= b["end"]
        assert sum(s["end"] - s["start"] for s in steps) == \
            att["critical_path"]["cp_cycles"]

    def test_gap_split_nonnegative(self, medium_run):
        _, _, att = medium_run
        for s in att["critical_path"]["steps"]:
            assert s["gap_dependency"] >= 0
            assert s["gap_resource"] >= 0

    def test_top_supernodes_sorted(self, medium_run):
        _, _, att = medium_run
        tops = att["critical_path"]["top_supernodes"]
        cycles = [t["cycles"] for t in tops]
        assert cycles == sorted(cycles, reverse=True)


class TestSerialization:
    def test_cycle_attribution_roundtrip(self, medium_run):
        _, _, att = medium_run
        acc = CycleAttribution.from_dict(att["cycles"])
        acc.check_conservation()
        assert acc.to_dict()["per_pe"] == att["cycles"]["per_pe"]
        assert acc.to_dict()["what_if"] == att["cycles"]["what_if"]

    def test_critical_path_roundtrip(self, medium_run):
        _, _, att = medium_run
        cp = CriticalPath.from_dict(att["critical_path"])
        assert cp.to_dict()["cp_cycles"] == \
            att["critical_path"]["cp_cycles"]
        assert cp.to_dict()["steps"] == att["critical_path"]["steps"]

    def test_renderers(self, medium_run):
        _, report, att = medium_run
        text = CycleAttribution.from_dict(att["cycles"]).render()
        assert "sim.cycles" in text and "what-if" in text
        text = CriticalPath.from_dict(att["critical_path"]).render()
        assert "critical path" in text

    def test_tree_levels_consistent(self, medium_run):
        _, _, att = medium_run
        tree = att["cycles"]["tree"]
        assert tree["cycles"] == sum(c["cycles"]
                                     for c in tree["children"])
        for child in tree["children"]:
            if child.get("children") and child["name"] != "compute":
                assert child["cycles"] == sum(
                    g["cycles"] for g in child["children"])


class TestHelpers:
    def test_coverage_merges_and_counts(self):
        cov = _Coverage([(0, 10), (5, 15), (20, 30)])
        assert cov.covered(0, 40) == 25
        assert cov.covered(12, 22) == 5
        assert cov.covered(15, 20) == 0
        assert cov.covered(7, 7) == 0

    def test_coverage_empty(self):
        assert _Coverage([]).covered(0, 100) == 0

    def test_memory_split_exact(self):
        for wait in (0, 1, 7, 1000):
            for weights in [(1, 1, 1), (0, 0, 0), (3, 0, 5), (0, 2, 0)]:
                parts = _split_memory_wait(wait, *weights)
                assert sum(parts) == wait
                assert all(p >= 0 for p in parts)

    def test_memory_split_all_zero_weights_goes_to_cache(self):
        assert _split_memory_wait(10, 0, 0, 0) == (10, 0, 0)
