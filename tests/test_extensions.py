"""Tests for extension features: supernodal solves, iterative refinement,
FIFO-vs-postorder scheduling, and the load-balance / footprint metrics."""

import numpy as np
import pytest

from repro.arch.config import SpatulaConfig
from repro.arch.sim import simulate
from repro.numeric import (
    SparseSolver,
    cholesky_solve,
    iterative_refinement,
    lu_solve,
    multifrontal_cholesky,
    multifrontal_lu,
)
from repro.sparse import circuit_like, grid_laplacian_3d
from repro.sparse.csc import CSCMatrix
from repro.symbolic import symbolic_factorize


class TestSupernodalSolve:
    def test_cholesky_matches_dense(self, rng, spd_medium):
        sf = symbolic_factorize(spd_medium)
        factor = multifrontal_cholesky(spd_medium, sf)
        pb = rng.standard_normal(spd_medium.n_rows)
        x = cholesky_solve(factor, pb)
        want = np.linalg.solve(spd_medium.permuted(sf.perm).to_dense(), pb)
        assert np.allclose(x, want)

    def test_lu_matches_dense(self, rng, unsym_small):
        sf = symbolic_factorize(unsym_small, kind="lu")
        factors = multifrontal_lu(unsym_small, sf)
        pb = rng.standard_normal(unsym_small.n_rows)
        x = lu_solve(factors, pb)
        want = np.linalg.solve(
            unsym_small.permuted(sf.perm).to_dense(), pb
        )
        assert np.allclose(x, want, atol=1e-9)

    def test_solver_methods_agree(self, rng, spd_medium):
        solver = SparseSolver(spd_medium)
        b = rng.standard_normal(spd_medium.n_rows)
        assert np.allclose(solver.solve(b, method="supernodal"),
                           solver.solve(b, method="csc"))

    def test_solver_methods_agree_lu(self, rng, unsym_random):
        solver = SparseSolver(unsym_random, kind="lu")
        b = rng.standard_normal(unsym_random.n_rows)
        assert np.allclose(solver.solve(b, method="supernodal"),
                           solver.solve(b, method="csc"), atol=1e-10)

    def test_unknown_method_rejected(self, rng, spd_small):
        solver = SparseSolver(spd_small)
        with pytest.raises(ValueError):
            solver.solve(np.ones(spd_small.n_rows), method="magic")

    def test_amalgamated_factor_solves(self, rng):
        matrix = grid_laplacian_3d(4, seed=9)
        solver = SparseSolver(matrix, relax_small=16, relax_ratio=0.6)
        b = rng.standard_normal(matrix.n_rows)
        x = solver.solve(b)
        assert solver.residual_norm(matrix, x, b) < 1e-12


class TestIterativeRefinement:
    def test_already_converged_stops_immediately(self, rng, spd_small):
        solver = SparseSolver(spd_small)
        b = rng.standard_normal(spd_small.n_rows)
        result = solver.solve_refined(spd_small, b)
        assert result.converged
        assert result.iterations <= 1

    def test_recovers_from_perturbed_solve(self, rng):
        # A deliberately sloppy solver: correct up to 1% multiplicative
        # noise. Refinement must still converge.
        dense = np.diag(np.arange(1.0, 9.0))
        dense[0, 7] = dense[7, 0] = 0.3
        matrix = CSCMatrix.from_dense(dense)
        exact = np.linalg.inv(dense)
        noise = rng.uniform(0.99, 1.01, 8)

        def sloppy_solve(r):
            return (exact @ r) * noise

        b = rng.standard_normal(8)
        result = iterative_refinement(matrix, sloppy_solve, b,
                                      tolerance=1e-13)
        assert result.converged
        assert result.iterations >= 1
        assert np.allclose(matrix.matvec(result.x), b, atol=1e-10)

    def test_history_monotone_until_stop(self, rng, spd_medium):
        solver = SparseSolver(spd_medium)
        b = rng.standard_normal(spd_medium.n_rows)
        result = solver.solve_refined(spd_medium, b)
        assert len(result.history) >= 1
        assert result.residual_norm <= result.history[0] + 1e-16

    def test_stagnation_detected(self):
        # A hopeless "solver" that returns garbage: refinement must stop
        # rather than loop forever.
        dense = np.eye(4) * 2.0
        matrix = CSCMatrix.from_dense(dense)

        def garbage_solve(r):
            return np.zeros_like(r)

        result = iterative_refinement(matrix, garbage_solve, np.ones(4),
                                      max_iterations=5)
        assert not result.converged
        assert result.iterations <= 5


class TestSnOrderAblation:
    def test_fifo_mode_completes_correctly(self, spd_medium):
        cfg = SpatulaConfig.tiny(sn_order="fifo")
        report = simulate(spd_medium, config=cfg, check_numerics=True)
        assert report.cycles > 0

    def test_invalid_sn_order_rejected(self):
        with pytest.raises(ValueError):
            SpatulaConfig.tiny(sn_order="random")

    def test_postorder_footprint_not_worse(self):
        # Section 5.2: the postorder min-heap minimizes live data.
        matrix = circuit_like(2000, hub_fraction=0.05, seed=3)
        reports = {}
        for sn_order in ("postorder", "fifo"):
            cfg = SpatulaConfig.paper(sn_order=sn_order)
            reports[sn_order] = simulate(matrix, kind="lu", config=cfg,
                                         ordering="amd")
        assert reports["postorder"].peak_live_front_bytes \
            <= reports["fifo"].peak_live_front_bytes

    def test_footprint_positive_and_bounded(self, spd_medium):
        report = simulate(spd_medium, config=SpatulaConfig.tiny())
        assert report.peak_live_front_bytes > 0
        total = sum(
            sn.front_size ** 2 * 8
            for sn in symbolic_factorize(spd_medium).tree.supernodes
        )
        assert report.peak_live_front_bytes <= 2 * total


class TestLoadBalance:
    def test_imbalance_at_least_one(self, spd_medium):
        report = simulate(spd_medium, config=SpatulaConfig.tiny())
        assert report.load_imbalance() >= 1.0

    def test_per_pe_busy_recorded(self, spd_medium):
        cfg = SpatulaConfig.tiny()
        report = simulate(spd_medium, config=cfg)
        assert len(report.pe_busy_cycles) == cfg.n_pes
        assert sum(report.pe_busy_cycles) == sum(
            report.busy_cycles_by_type.values()
        )

    def test_combined_policy_balances_better_than_inter(self):
        matrix = grid_laplacian_3d(6, seed=2)
        both = simulate(matrix, config=SpatulaConfig.small(), ordering="nd")
        inter = simulate(matrix,
                         config=SpatulaConfig.small(policy="inter"),
                         ordering="nd")
        assert both.load_imbalance() <= inter.load_imbalance() * 1.5
