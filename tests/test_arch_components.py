"""Unit tests for simulator components: config, timing, memory system,
NoC, PEs, generators, and the supernode scheduler."""

import pytest

from repro.arch.cache import BankedCache
from repro.arch.config import SpatulaConfig
from repro.arch.generator import Generator
from repro.arch.memory import HBMModel, TRAFFIC_KINDS
from repro.arch.noc import CrossbarPort, aggregate_bandwidth_tbs
from repro.arch.pe import PE, PendingTask
from repro.arch.scheduler import SupernodeScheduler
from repro.arch.systolic import task_input_tiles, task_latency
from repro.symbolic import symbolic_factorize
from repro.symbolic.tiling import TileGrid
from repro.tasks.graph import build_task_graph
from repro.tasks.task import Task, TaskType, TileRef


class TestConfig:
    def test_paper_peak_matches_table2(self):
        cfg = SpatulaConfig.paper()
        assert cfg.peak_tflops == pytest.approx(16.384)
        assert cfg.tile_bytes == 2048  # one 2 KB cache line per tile

    def test_hbm_bandwidth(self):
        cfg = SpatulaConfig.paper()
        total = cfg.hbm_channels * cfg.hbm_bytes_per_cycle_per_channel
        assert total * cfg.freq_ghz == pytest.approx(1024.0)  # 1 TB/s

    def test_cache_geometry(self):
        cfg = SpatulaConfig.paper()
        assert cfg.cache_lines == 8192  # 16 MB / 2 KB
        assert cfg.cache_sets_per_bank * cfg.cache_ways \
            * cfg.cache_banks == cfg.cache_lines

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            SpatulaConfig(n_pes=0)
        with pytest.raises(ValueError):
            SpatulaConfig(policy="magic")

    def test_named_configs_scale_down(self):
        assert SpatulaConfig.small().peak_tflops \
            < SpatulaConfig.paper().peak_tflops
        assert SpatulaConfig.tiny().peak_tflops \
            < SpatulaConfig.small().peak_tflops

    def test_overrides(self):
        cfg = SpatulaConfig.paper(n_pes=64)
        assert cfg.n_pes == 64
        assert cfg.tile == 16


class TestSystolicTiming:
    def setup_method(self):
        self.cfg = SpatulaConfig.paper()
        self.ref = TileRef(0, 0, 0)

    def test_dgemm_latency_scales_with_pairs(self):
        t1 = Task(ttype=TaskType.DGEMM, dest=self.ref, n_pairs=1)
        t4 = Task(ttype=TaskType.DGEMM, dest=self.ref, n_pairs=4)
        assert task_latency(t1, self.cfg) == 16
        assert task_latency(t4, self.cfg) == 64

    def test_dchol_latency_bound(self):
        t = Task(ttype=TaskType.DCHOL, dest=self.ref)
        # Critical path of T divide/sqrt stages plus drain.
        assert task_latency(t, self.cfg) \
            == 16 * self.cfg.divsqrt_latency + 32

    def test_dlu_same_as_dchol(self):
        chol = Task(ttype=TaskType.DCHOL, dest=self.ref)
        lu = Task(ttype=TaskType.DLU, dest=self.ref)
        assert task_latency(chol, self.cfg) == task_latency(lu, self.cfg)

    def test_tsolve_short(self):
        t = Task(ttype=TaskType.TSOLVE, dest=self.ref)
        assert task_latency(t, self.cfg) == 32

    def test_gather_scales_with_inputs(self):
        inputs = [TileRef(1, 0, 0), TileRef(2, 0, 0), TileRef(3, 0, 0)]
        t = Task(ttype=TaskType.GATHER, dest=self.ref, inputs=inputs)
        assert task_latency(t, self.cfg) == 3 * 16

    def test_input_tiles_deduplicated(self):
        a = TileRef(0, 1, 0)
        t = Task(ttype=TaskType.DGEMM, dest=self.ref, inputs=[a, a],
                 n_pairs=1)
        tiles = task_input_tiles(t)
        assert tiles == [self.ref, a]


class TestHBM:
    def test_read_accounts_traffic(self):
        cfg = SpatulaConfig.tiny()
        hbm = HBMModel(cfg)
        done = hbm.read_line(0, 0, "factor_load")
        assert done >= cfg.hbm_latency
        assert hbm.bytes_by_kind["factor_load"] == cfg.tile_bytes

    def test_channel_serializes(self):
        cfg = SpatulaConfig.tiny()
        hbm = HBMModel(cfg)
        d1 = hbm.read_line(0, 0, "factor_load")
        d2 = hbm.read_line(0, 0, "factor_load")
        assert d2 > d1

    def test_different_channels_parallel(self):
        cfg = SpatulaConfig.tiny()
        hbm = HBMModel(cfg)
        d1 = hbm.read_line(0, 0, "factor_load")
        d2 = hbm.read_line(1, 0, "factor_load")
        assert d1 == d2

    def test_bulk_read_spreads(self):
        cfg = SpatulaConfig.tiny()
        hbm = HBMModel(cfg)
        hbm.read_bulk(10_000, 0, "comp_load")
        assert hbm.bytes_by_kind["comp_load"] == 10_000
        assert max(hbm.channel_free) > 0

    def test_traffic_kinds_complete(self):
        hbm = HBMModel(SpatulaConfig.tiny())
        assert set(hbm.bytes_by_kind) == set(TRAFFIC_KINDS)


class TestCache:
    def make(self, cfg=None):
        cfg = cfg or SpatulaConfig.tiny()
        hbm = HBMModel(cfg)
        return BankedCache(cfg, hbm), hbm, cfg

    def test_first_touch_allocates_without_dram(self):
        cache, hbm, _ = self.make()
        cache.load(0, 0, "factor_load")
        assert cache.stats.allocations == 1
        assert cache.stats.misses == 0
        assert hbm.total_bytes == 0

    def test_second_load_hits(self):
        cache, _, _ = self.make()
        cache.load(0, 0, "factor_load")
        cache.load(0, 10, "factor_load")
        assert cache.stats.hits == 1

    def test_eviction_and_refetch(self):
        cfg = SpatulaConfig.tiny()
        cache, hbm, _ = self.make(cfg)
        # Touch way more tiles than fit, striding within one set.
        stride = cfg.cache_banks * cfg.cache_sets_per_bank
        addrs = [k * stride for k in range(cfg.cache_ways + 2)]
        for a in addrs:
            cache.store(a, 0)
        # Oldest two got evicted dirty -> spills.
        assert cache.stats.dirty_evictions == 2
        cache.load(addrs[0], 100, "factor_load")
        assert cache.stats.misses == 1
        assert hbm.bytes_by_kind["factor_load"] == cfg.tile_bytes

    def test_lru_order(self):
        cfg = SpatulaConfig.tiny()
        cache, _, _ = self.make(cfg)
        stride = cfg.cache_banks * cfg.cache_sets_per_bank
        addrs = [k * stride for k in range(cfg.cache_ways)]
        for a in addrs:
            cache.store(a, 0)
        cache.load(addrs[0], 1, "factor_load")  # refresh oldest
        cache.store(stride * 100, 2)            # evicts addrs[1], not [0]
        cache.load(addrs[0], 3, "factor_load")
        assert cache.stats.misses == 0

    def test_store_classification(self):
        cache, hbm, cfg = self.make()
        cache.classify_store = lambda addr: "store_result"
        stride = cfg.cache_banks * cfg.cache_sets_per_bank
        for k in range(cfg.cache_ways + 1):
            cache.store(k * stride, 0)
        assert hbm.bytes_by_kind["store_result"] == cfg.tile_bytes

    def test_flush_only_results(self):
        cache, hbm, _ = self.make()
        cache.store(0, 0)
        cache.store(1, 0)
        cache.flush_results(10, is_result=lambda addr: addr == 0)
        assert hbm.bytes_by_kind["store_result"] == cache.config.tile_bytes

    def test_hit_rate_stat(self):
        cache, _, _ = self.make()
        cache.load(0, 0, "factor_load")
        cache.load(0, 1, "factor_load")
        cache.load(0, 2, "factor_load")
        assert cache.stats.hit_rate == pytest.approx(1.0)


class TestNoC:
    def test_port_reservation(self):
        port = CrossbarPort(bytes_per_cycle=256)
        done1 = port.reserve(0, 2048)
        done2 = port.reserve(0, 2048)
        assert done1 == 8 and done2 == 16

    def test_aggregate_bandwidth(self):
        # The paper's sizing: 32 PEs x 256 B/cycle at 1 GHz = 8 TB/s.
        assert aggregate_bandwidth_tbs(32, 256, 1.0) == pytest.approx(8.192)


class TestPE:
    def test_slots_and_pending(self):
        pe = PE(index=0, n_slots=2)
        assert pe.slots_free == 2
        pe.add_pending(PendingTask(0, 0, op_ready=5, stream_done=5,
                                   latency=10))
        assert pe.slots_free == 1
        with pytest.raises(AssertionError):
            pe.add_pending(PendingTask(0, 1, 0, 0, 1))
            pe.add_pending(PendingTask(0, 2, 0, 0, 1))
            pe.add_pending(PendingTask(0, 3, 0, 0, 1))

    def test_pick_earliest_runnable(self):
        pe = PE(index=0, n_slots=4)
        late = PendingTask(0, 1, op_ready=9, stream_done=9, latency=1)
        early = PendingTask(0, 2, op_ready=3, stream_done=3, latency=1)
        pe.add_pending(late)
        pe.add_pending(early)
        assert pe.pick_runnable(10) is early
        assert pe.pick_runnable(1) is None
        assert pe.next_wakeup() == 3

    def test_execution_accounting(self):
        pe = PE(index=0, n_slots=2)
        item = PendingTask(0, 0, op_ready=0, stream_done=25, latency=10)
        pe.add_pending(item)
        end = pe.start_execution(item, 0, TaskType.DGEMM)
        assert end == 25  # stream-bound retire
        assert pe.busy_by_type[TaskType.DGEMM] == 25
        assert pe.slots_free == 2

    def test_cannot_start_while_busy(self):
        pe = PE(index=0, n_slots=2)
        a = PendingTask(0, 0, 0, 0, 10)
        b = PendingTask(0, 1, 0, 0, 10)
        pe.add_pending(a)
        pe.add_pending(b)
        pe.start_execution(a, 0, TaskType.TSOLVE)
        with pytest.raises(AssertionError):
            pe.start_execution(b, 5, TaskType.TSOLVE)

    def test_full_duplex_ports(self):
        pe = PE(index=0, n_slots=2)
        read_done = pe.reserve_port(0, 8)
        write_done = pe.reserve_write_port(0, 8)
        assert read_done == 8 and write_done == 8  # no interference


class TestGenerator:
    def make_gen(self, window=1):
        grid = TileGrid(front_size=12, n_pivot_cols=12, tile=4, supertile=4)
        graph = build_task_graph(0, grid, "cholesky")
        return Generator(sn=0, graph=graph, window=window)

    def test_in_order_head_blocking(self):
        gen = self.make_gen()
        first = gen.ready_tasks()
        assert first == [0]  # dchol(0,0) has no deps
        gen.mark_dispatched(0)
        # Head is now tsolve(1,0), blocked on dchol completion.
        assert gen.ready_tasks() == []
        gen.on_complete(0)
        assert gen.ready_tasks() == [1]

    def test_window_allows_lookahead(self):
        gen = self.make_gen(window=8)
        gen.mark_dispatched(0)
        ready = gen.ready_tasks()
        assert ready == []  # everything transitively needs dchol here
        gen.on_complete(0)
        assert len(gen.ready_tasks()) >= 2  # both tsolves of column 0

    def test_double_dispatch_rejected(self):
        gen = self.make_gen()
        gen.mark_dispatched(0)
        with pytest.raises(AssertionError):
            gen.mark_dispatched(0)

    def test_dispatch_with_deps_rejected(self):
        gen = self.make_gen()
        with pytest.raises(AssertionError):
            gen.mark_dispatched(1)

    def test_done_after_all_complete(self):
        gen = self.make_gen()
        order = []
        while not gen.done:
            ready = gen.ready_tasks()
            assert ready, "generator deadlocked"
            t = ready[0]
            gen.mark_dispatched(t)
            gen.on_complete(t)
            order.append(t)
        assert order == list(range(gen.n_tasks))


class TestSupernodeScheduler:
    def make(self, matrix, policy="intra+inter"):
        sf = symbolic_factorize(matrix)
        cfg = SpatulaConfig.tiny(policy=policy)
        return SupernodeScheduler(tree=sf.tree, config=cfg), sf

    def test_leaves_initially_ready(self, spd_medium):
        sched, sf = self.make(spd_medium)
        leaves = [sn.index for sn in sf.tree.supernodes if not sn.children]
        got = []
        while sched.has_ready():
            got.append(sched.pop_ready())
        assert sorted(got) == sorted(leaves)

    def test_postorder_priority(self, spd_medium):
        sched, _ = self.make(spd_medium)
        a = sched.pop_ready()
        b = sched.pop_ready()
        assert a < b  # min-heap by postorder position

    def test_parent_ready_after_children(self, spd_medium):
        sched, sf = self.make(spd_medium)
        completed = set()
        launched = []
        while not sched.all_done:
            while sched.has_ready():
                launched.append(sched.pop_ready())
            sn = launched.pop(0)
            for c in sf.tree.supernodes[sn].children:
                assert c in completed
            completed.add(sn)
            sched.complete(sn)
        assert len(completed) == sf.n_supernodes

    def test_policy_limits(self, spd_medium):
        for policy, want in [("intra", 1)]:
            sched, _ = self.make(spd_medium, policy)
            assert sched.max_in_flight == want
        sched, _ = self.make(spd_medium, "inter")
        assert sched.max_in_flight == SpatulaConfig.tiny().n_pes


class TestMSHR:
    def test_miss_limit_enforced(self):
        cfg = SpatulaConfig.tiny(max_outstanding_misses=2)
        hbm = HBMModel(cfg)
        cache = BankedCache(cfg, hbm)
        stride = cfg.cache_banks * cfg.cache_sets_per_bank
        # Fill and evict tiles so later loads genuinely miss.
        addrs = [k * stride for k in range(cfg.cache_ways + 6)]
        for a in addrs:
            cache.store(a, 0)
        # Re-load the evicted ones at the same cycle: with only 2 MSHRs,
        # some must wait on earlier fills.
        for a in addrs[:6]:
            cache.load(a, 10_000, "factor_load")
        assert cache.stats.misses >= 4
        assert cache.stats.mshr_stall_cycles > 0

    def test_large_limit_never_stalls(self):
        cfg = SpatulaConfig.tiny()  # default 256 MSHRs
        hbm = HBMModel(cfg)
        cache = BankedCache(cfg, hbm)
        stride = cfg.cache_banks * cfg.cache_sets_per_bank
        for k in range(cfg.cache_ways + 4):
            cache.store(k * stride, 0)
        for k in range(4):
            cache.load(k * stride, 10_000, "factor_load")
        assert cache.stats.mshr_stall_cycles == 0
