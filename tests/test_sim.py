"""Integration tests for the Spatula simulation engine."""

import numpy as np
import pytest

from repro.arch.config import SpatulaConfig
from repro.arch.energy import area_breakdown, power_breakdown
from repro.arch.sim import SpatulaSim, simulate
from repro.symbolic import symbolic_factorize
from repro.tasks.plan import build_plan
from repro.tasks.task import TaskType


def run(matrix, kind="cholesky", config=None, **cfg_over):
    config = config or SpatulaConfig.tiny(**cfg_over)
    return simulate(matrix, kind=kind, config=config)


class TestBasicExecution:
    def test_completes_and_counts_tasks(self, spd_medium):
        report = run(spd_medium)
        assert report.cycles > 0
        assert report.n_tasks > 0
        assert report.n_supernodes > 0

    def test_lu_completes(self, unsym_small):
        report = run(unsym_small, kind="lu")
        assert report.cycles > 0
        assert report.busy_cycles_by_type[TaskType.DLU] > 0
        assert report.busy_cycles_by_type[TaskType.DCHOL] == 0

    def test_cholesky_uses_dchol_not_dlu(self, spd_medium):
        report = run(spd_medium)
        assert report.busy_cycles_by_type[TaskType.DCHOL] > 0
        assert report.busy_cycles_by_type[TaskType.DLU] == 0

    def test_deterministic(self, spd_medium):
        r1 = run(spd_medium)
        r2 = run(spd_medium)
        assert r1.cycles == r2.cycles
        assert r1.traffic_bytes == r2.traffic_bytes

    def test_machine_flops_match_plan(self, spd_medium):
        cfg = SpatulaConfig.tiny()
        sf = symbolic_factorize(spd_medium)
        plan = build_plan(sf, tile=cfg.tile, supertile=cfg.supertile)
        want = sum(plan.task_graph(k).total_flops()
                   for k in range(plan.n_supernodes))
        report = SpatulaSim(plan, cfg).run()
        assert report.machine_flops == want

    def test_all_tasks_executed(self, spd_medium):
        cfg = SpatulaConfig.tiny()
        sf = symbolic_factorize(spd_medium)
        plan = build_plan(sf, tile=cfg.tile, supertile=cfg.supertile)
        want = sum(plan.task_graph(k).n_tasks
                   for k in range(plan.n_supernodes))
        report = SpatulaSim(plan, cfg).run()
        assert report.n_tasks == want

    def test_tile_mismatch_rejected(self, spd_small):
        sf = symbolic_factorize(spd_small)
        plan = build_plan(sf, tile=8, supertile=4)
        with pytest.raises(ValueError):
            SpatulaSim(plan, SpatulaConfig.tiny())  # tile=4 != 8

    def test_single_supernode_matrix(self):
        from repro.sparse.csc import CSCMatrix
        dense = np.eye(6) * 10 - 0.5
        report = run(CSCMatrix.from_dense(dense))
        assert report.n_supernodes == 1
        assert report.cycles > 0


class TestMetrics:
    def test_cycle_breakdown_sums_to_one(self, spd_medium):
        report = run(spd_medium)
        assert sum(report.cycle_breakdown().values()) == pytest.approx(1.0)

    def test_utilization_bounded(self, spd_medium):
        report = run(spd_medium)
        assert 0.0 < report.utilization <= 1.0

    def test_achieved_tflops_below_peak(self, spd_medium):
        report = run(spd_medium)
        assert 0.0 < report.achieved_tflops < report.config.peak_tflops

    def test_traffic_fractions_sum_to_one(self, spd_medium):
        report = run(spd_medium)
        assert sum(report.traffic_fractions().values()) \
            == pytest.approx(1.0)

    def test_compulsory_traffic_present(self, spd_medium):
        report = run(spd_medium)
        assert report.traffic_bytes["comp_load"] > 0

    def test_result_stores_present(self, spd_medium):
        report = run(spd_medium)
        assert report.traffic_bytes["store_result"] > 0

    def test_concurrency_cdf_valid(self, spd_medium):
        report = run(spd_medium)
        levels, cdf = report.concurrency_cdf()
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[-1] == pytest.approx(1.0)
        assert levels.min() >= 1

    def test_mean_concurrency_positive(self, spd_medium):
        report = run(spd_medium)
        assert report.mean_concurrency() >= 1.0

    def test_concurrency_cdf_all_zero_length_intervals(self, spd_medium):
        """Degenerate runs where every supernode interval is zero-length
        (all-empty supernodes) must fall back to the empty-trace CDF
        instead of crashing on an empty event list."""
        report = run(spd_medium)
        report.sn_intervals = [(5, 5), (7, 7)]
        levels, cdf = report.concurrency_cdf()
        assert levels.tolist() == [0]
        assert cdf.tolist() == [1.0]
        assert report.mean_concurrency() == 0.0

    def test_concurrency_cdf_no_intervals(self, spd_medium):
        report = run(spd_medium)
        report.sn_intervals = []
        levels, cdf = report.concurrency_cdf()
        assert levels.tolist() == [0]
        assert cdf.tolist() == [1.0]

    def test_summary_mentions_matrix(self, spd_small):
        cfg = SpatulaConfig.tiny()
        report = simulate(spd_small, config=cfg, matrix_name="mymatrix")
        assert "mymatrix" in report.summary()

    def test_bandwidth_below_hbm_peak(self, spd_medium):
        report = run(spd_medium)
        cfg = report.config
        peak_gbs = cfg.hbm_phys * cfg.hbm_gbs_per_phy
        assert report.avg_bandwidth_gbs <= peak_gbs * 1.01


class TestSchedulingPolicies:
    @pytest.mark.parametrize("policy", ["intra+inter", "intra", "inter"])
    def test_all_policies_complete(self, policy, spd_medium):
        report = run(spd_medium, policy=policy)
        assert report.cycles > 0

    def test_combined_policy_fastest(self, spd_medium):
        cycles = {
            policy: run(spd_medium, policy=policy).cycles
            for policy in ("intra+inter", "intra", "inter")
        }
        assert cycles["intra+inter"] <= cycles["intra"]
        assert cycles["intra+inter"] <= cycles["inter"]

    def test_intra_runs_one_supernode_at_a_time(self, spd_medium):
        report = run(spd_medium, policy="intra")
        levels, _ = report.concurrency_cdf()
        assert levels.max() == 1

    def test_bf_order_beats_rowmajor(self, spd_dense_ish):
        bf = run(spd_dense_ish, order="bf")
        rm = run(spd_dense_ish, order="rowmajor")
        assert bf.cycles <= rm.cycles

    def test_dataflow_window_helps_or_equal(self, spd_medium):
        inorder = run(spd_medium, dataflow_window=1)
        ooo = run(spd_medium, dataflow_window=16)
        # The paper found < 10% gains; it must never be much worse.
        assert ooo.cycles <= inorder.cycles * 1.1

    def test_more_pes_not_slower(self, spd_medium):
        small = run(spd_medium, n_pes=1)
        big = run(spd_medium, n_pes=8, cache_banks=8)
        assert big.cycles <= small.cycles

    def test_bigger_cache_not_slower(self, spd_dense_ish):
        tiny_cache = run(spd_dense_ish, cache_mb=0.03125)
        big_cache = run(spd_dense_ish, cache_mb=1.0)
        assert big_cache.cycles <= tiny_cache.cycles * 1.05
        assert big_cache.traffic_bytes["store_spill"] \
            <= tiny_cache.traffic_bytes["store_spill"]


class TestEnergyModels:
    def test_paper_area_matches_table2(self):
        areas = area_breakdown(SpatulaConfig.paper())
        assert areas["Total"] == pytest.approx(107.7, abs=0.5)
        assert areas["PEs"] == pytest.approx(43.5, abs=0.1)
        assert areas["Cache"] == pytest.approx(17.6, abs=0.1)
        assert areas["NoC"] == pytest.approx(16.7, abs=0.1)
        assert areas["HBM PHYs"] == pytest.approx(29.8, abs=0.1)

    def test_area_scales_with_pes(self):
        small = area_breakdown(SpatulaConfig.paper(n_pes=16))
        big = area_breakdown(SpatulaConfig.paper(n_pes=64))
        assert big["PEs"] == pytest.approx(4 * small["PEs"])

    def test_power_breakdown_positive(self, spd_medium):
        report = run(spd_medium)
        power = power_breakdown(report)
        assert power["Total"] > 0
        assert power["Total"] == pytest.approx(
            power["PEs"] + power["Cache"] + power["NoC"] + power["HBM"]
        )

    def test_power_tracks_activity(self, spd_small, spd_medium):
        light = power_breakdown(run(spd_small))
        heavy = power_breakdown(run(spd_medium))
        # More utilization -> more PE power (same config).
        assert heavy["PEs"] >= light["PEs"] * 0.5


class TestDependenceCorrectness:
    def test_no_task_runs_before_deps(self, spd_medium):
        """Replay the simulation, recording completion times, and check
        every dependence edge was respected by execution start times."""
        cfg = SpatulaConfig.tiny()
        sf = symbolic_factorize(spd_medium)
        plan = build_plan(sf, tile=cfg.tile, supertile=cfg.supertile)
        sim = SpatulaSim(plan, cfg)
        starts: dict[tuple, int] = {}
        ends: dict[tuple, int] = {}
        original = sim._on_exec_done

        def spy_exec_done(payload, now):
            _pe, gen_sn, tidx = payload
            ends[(gen_sn, tidx)] = now
            original(payload, now)

        sim._on_exec_done = spy_exec_done
        sim.run()
        # All tasks ended; dependences in each graph must be ordered.
        for k in range(plan.n_supernodes):
            graph = plan.task_graph(k)
            for t, deps in enumerate(graph.deps):
                for d in deps:
                    assert ends[(k, d)] <= ends[(k, t)]
