"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, load_matrix, main
from repro.sparse import grid_laplacian_2d
from repro.sparse.io import write_matrix_market


class TestLoadMatrix:
    def test_suite_name(self):
        matrix, kind, ordering = load_matrix("suite:Serena")
        assert kind == "cholesky"
        assert ordering == "nd"
        assert matrix.n_rows == 8000

    def test_suite_name_with_scale(self):
        matrix, _, _ = load_matrix("suite:Serena@0.3")
        assert matrix.n_rows < 8000

    def test_lu_suite_entry(self):
        _, kind, _ = load_matrix("suite:FullChip@0.3")
        assert kind == "lu"

    def test_unknown_suite_name(self):
        with pytest.raises(KeyError):
            load_matrix("suite:NotAMatrix")

    def test_mtx_file(self, tmp_path):
        matrix = grid_laplacian_2d(4, seed=1)
        path = tmp_path / "m.mtx"
        write_matrix_market(path, matrix.to_coo())
        loaded, kind, _ = load_matrix(str(path))
        assert kind == "cholesky"
        assert np.allclose(loaded.to_dense(), matrix.to_dense())


class TestCommands:
    def test_suite_lists_40(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert "Serena" in out and "rajat31" in out
        assert len(out.strip().splitlines()) == 41  # header + 40

    def test_info(self, capsys):
        assert main(["info", "suite:bmwcra_1@0.3"]) == 0
        out = capsys.readouterr().out
        assert "supernodes" in out and "nnz(L)" in out

    def test_solve(self, capsys):
        assert main(["solve", "suite:bmwcra_1@0.3"]) == 0
        residual = float(
            capsys.readouterr().out.splitlines()[0].split()[1]
        )
        assert residual < 1e-10

    def test_solve_refined(self, capsys):
        assert main(["solve", "suite:TSOPF_b2383@0.3", "--refine"]) == 0
        assert "refinement" in capsys.readouterr().out

    def test_simulate_with_check_and_gantt(self, capsys):
        assert main(["simulate", "suite:bmwcra_1@0.3", "--check",
                     "--gantt", "--n-pes", "4"]) == 0
        out = capsys.readouterr().out
        assert "numeric check passed" in out
        assert "PE  0" in out

    def test_simulate_writes_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main(["simulate", "suite:bmwcra_1@0.3",
                     "--trace", str(trace_path)]) == 0
        data = json.loads(trace_path.read_text())
        assert len(data["traceEvents"]) > 0
        event = data["traceEvents"][0]
        assert {"name", "ts", "dur", "tid"} <= set(event)

    def test_simulate_config_overrides(self, capsys):
        assert main(["simulate", "suite:bmwcra_1@0.3", "--policy", "intra",
                     "--sn-order", "fifo"]) == 0
        assert "cycles" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main(["compare", "suite:bmwcra_1@0.3"]) == 0
        out = capsys.readouterr().out
        assert "Spatula" in out and "V100" in out and "Zen2" in out

    def test_kind_override(self, capsys):
        assert main(["info", "suite:bmwcra_1@0.3", "--kind", "lu"]) == 0
        assert "[lu" in capsys.readouterr().out

    def test_parser_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


def test_broken_pipe_handled(tmp_path):
    """Piping CLI output into a closed consumer must not traceback."""
    import subprocess
    import sys

    from repro.sparse import grid_laplacian_2d
    from repro.sparse.io import write_matrix_market

    path = tmp_path / "m.mtx"
    write_matrix_market(path, grid_laplacian_2d(5, seed=1).to_coo())
    proc = subprocess.run(
        f"{sys.executable} -m repro info {path} | head -1",
        shell=True, capture_output=True, text=True, cwd="/root/repo",
    )
    assert "Traceback" not in proc.stderr


def test_missing_file_friendly_error(capsys):
    assert main(["info", "/tmp/definitely_not_here.mtx"]) == 1
    assert "error:" in capsys.readouterr().err
