"""Tests for the end-to-end SparseSolver."""

import numpy as np
import pytest

from repro.numeric import SparseSolver
from repro.sparse import (
    circuit_like,
    grid_laplacian_2d,
    grid_laplacian_3d,
)
from repro.sparse.csc import CSCMatrix


class TestCholeskySolver:
    @pytest.mark.parametrize("ordering", ["amd", "nd", "rcm"])
    def test_solve_residual(self, ordering, rng, spd_medium):
        solver = SparseSolver(spd_medium, kind="cholesky", ordering=ordering)
        b = rng.standard_normal(spd_medium.n_rows)
        x = solver.solve(b)
        assert solver.residual_norm(spd_medium, x, b) < 1e-12

    def test_matches_dense_solve(self, rng, spd_small):
        solver = SparseSolver(spd_small)
        b = rng.standard_normal(spd_small.n_rows)
        x = solver.solve(b)
        want = np.linalg.solve(spd_small.to_dense(), b)
        assert np.allclose(x, want)

    def test_multiple_rhs_sequential(self, rng, spd_small):
        solver = SparseSolver(spd_small)
        for _ in range(3):
            b = rng.standard_normal(spd_small.n_rows)
            assert solver.residual_norm(spd_small, solver.solve(b), b) < 1e-12

    def test_factor_nnz_positive(self, spd_small):
        assert SparseSolver(spd_small).factor_nnz >= spd_small.n_rows


class TestLUSolver:
    def test_solve_residual(self, rng, unsym_small):
        solver = SparseSolver(unsym_small, kind="lu")
        b = rng.standard_normal(unsym_small.n_rows)
        x = solver.solve(b)
        assert solver.residual_norm(unsym_small, x, b) < 1e-11

    def test_matches_dense_solve(self, rng, unsym_random):
        solver = SparseSolver(unsym_random, kind="lu")
        b = rng.standard_normal(unsym_random.n_rows)
        x = solver.solve(b)
        want = np.linalg.solve(unsym_random.to_dense(), b)
        assert np.allclose(x, want, atol=1e-9)

    def test_zero_diagonal_handled_by_pivoting(self, rng):
        dense = np.array([
            [0.0, 5.0, 0.1],
            [4.0, 0.0, 0.0],
            [0.2, 0.1, 6.0],
        ])
        m = CSCMatrix.from_dense(dense)
        solver = SparseSolver(m, kind="lu")
        b = rng.standard_normal(3)
        assert np.allclose(solver.solve(b), np.linalg.solve(dense, b))

    def test_lu_on_spd_matrix(self, rng, spd_small):
        solver = SparseSolver(spd_small, kind="lu")
        b = rng.standard_normal(spd_small.n_rows)
        assert solver.residual_norm(spd_small, solver.solve(b), b) < 1e-12


class TestRefactorize:
    def test_same_pattern_new_values(self, rng):
        a1 = grid_laplacian_2d(6, seed=1)
        solver = SparseSolver(a1)
        a2 = grid_laplacian_2d(6, seed=1)
        a2.data = a2.data * 2.0
        solver.refactorize(a2)
        b = rng.standard_normal(a2.n_rows)
        assert solver.residual_norm(a2, solver.solve(b), b) < 1e-12

    def test_refactorize_lu(self, rng):
        a1 = circuit_like(64, seed=2)
        solver = SparseSolver(a1, kind="lu")
        a2 = CSCMatrix(a1.n_rows, a1.n_cols, a1.indptr.copy(),
                       a1.indices.copy(), a1.data * 1.7)
        solver.refactorize(a2)
        b = rng.standard_normal(a2.n_rows)
        assert solver.residual_norm(a2, solver.solve(b), b) < 1e-11

    def test_pattern_change_rejected(self):
        solver = SparseSolver(grid_laplacian_2d(5, seed=1))
        other = grid_laplacian_2d(5, 6, seed=1)
        with pytest.raises(ValueError):
            solver.refactorize(other)

    def test_timestep_loop(self, rng):
        # The Figure 2 application loop: analyze once, refactor + solve
        # many times as values drift.
        base = grid_laplacian_3d(4, seed=3)
        solver = SparseSolver(base, kind="cholesky")
        current = base
        for step in range(4):
            scaled = CSCMatrix(
                current.n_rows, current.n_cols, current.indptr.copy(),
                current.indices.copy(), current.data * (1.0 + 0.1 * step),
            )
            solver.refactorize(scaled)
            b = rng.standard_normal(base.n_rows)
            assert solver.residual_norm(scaled, solver.solve(b), b) < 1e-12
            current = scaled


class TestValidation:
    def test_rejects_rectangular(self):
        with pytest.raises(ValueError):
            SparseSolver(CSCMatrix.from_dense(np.ones((2, 3))))

    def test_rejects_unknown_kind(self, spd_small):
        with pytest.raises(ValueError):
            SparseSolver(spd_small, kind="ldl")

    def test_symbolic_exposed(self, spd_small):
        solver = SparseSolver(spd_small)
        assert solver.symbolic.n == spd_small.n_rows
        assert solver.symbolic.flops > 0


class TestMultiRHS:
    def test_matrix_rhs_cholesky(self, rng, spd_small):
        solver = SparseSolver(spd_small)
        b = rng.standard_normal((spd_small.n_rows, 4))
        x = solver.solve(b)
        assert x.shape == b.shape
        want = np.linalg.solve(spd_small.to_dense(), b)
        assert np.allclose(x, want)

    def test_matrix_rhs_lu(self, rng, unsym_small):
        solver = SparseSolver(unsym_small, kind="lu")
        b = rng.standard_normal((unsym_small.n_rows, 3))
        x = solver.solve(b)
        want = np.linalg.solve(unsym_small.to_dense(), b)
        assert np.allclose(x, want, atol=1e-9)

    def test_bad_ndim_rejected(self, rng, spd_small):
        solver = SparseSolver(spd_small)
        with pytest.raises(ValueError):
            solver.solve(rng.standard_normal((2, 2, 2)))


class TestFailureModes:
    def test_indefinite_matrix_raises_clearly(self):
        dense = np.array([[1.0, 2.0], [2.0, 1.0]])  # indefinite
        with pytest.raises(ValueError, match="pivot"):
            SparseSolver(CSCMatrix.from_dense(dense), kind="cholesky")

    def test_structurally_singular_lu_raises(self):
        dense = np.array([[1.0, 1.0], [0.0, 0.0]])
        with pytest.raises(ValueError, match="singular"):
            SparseSolver(CSCMatrix.from_dense(dense), kind="lu")

    def test_numerically_tough_lu_survives_via_perturbation(self, rng):
        # Structurally fine but with a tiny pivot the static ordering
        # cannot avoid: the perturbation + refinement path must cope.
        dense = np.array([
            [1e-18, 2.0, 0.0],
            [2.0, 1e-18, 1.0],
            [0.0, 1.0, 3.0],
        ])
        m = CSCMatrix.from_dense(dense)
        solver = SparseSolver(m, kind="lu")
        b = rng.standard_normal(3)
        result = solver.solve_refined(m, b, tolerance=1e-10)
        assert result.residual_norm < 1e-8
