"""Tests for the observability layer (repro.obs): metrics registry,
span tracer, run artifacts, diffing, and the CLI surface on top."""

import json
import logging

import pytest

from repro.arch.config import SpatulaConfig
from repro.arch.sim import simulate
from repro.cli import main
from repro.obs import (
    MetricsRegistry,
    RunArtifact,
    Tracer,
    diff_artifacts,
    enable_tracing,
    get_tracer,
    render_artifact,
    render_diff,
    setup_logging,
    span,
    verbosity_to_level,
)
from repro.obs.spans import _NULL_CONTEXT

# Global tracer/registry/telemetry isolation is the conftest autouse
# fixture (_isolate_observability_state); no per-file fixture needed.


class TestMetricsRegistry:
    def test_counter_inc(self):
        reg = MetricsRegistry()
        c = reg.counter("sim.tasks")
        c.inc()
        c.inc(4)
        assert reg.value("sim.tasks") == 5

    def test_counter_get_or_create_returns_same(self):
        reg = MetricsRegistry()
        assert reg.counter("a.b") is reg.counter("a.b")

    def test_gauge_set_and_set_max(self):
        reg = MetricsRegistry()
        g = reg.gauge("cache.hit_rate")
        g.set(0.5)
        g.set_max(0.3)
        assert reg.value("cache.hit_rate") == 0.5
        g.set_max(0.9)
        assert reg.value("cache.hit_rate") == 0.9

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("scheduler.queue_depth")
        for v in (1, 2, 3, 100):
            h.observe(v)
        assert h.count == 4
        assert h.min == 1 and h.max == 100
        assert h.mean == pytest.approx(106 / 4)
        assert h.quantile(0.0) <= h.quantile(1.0)

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_value_of_histogram_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h").observe(1)
        with pytest.raises(TypeError):
            reg.value("h")

    def test_value_default_for_missing(self):
        reg = MetricsRegistry()
        assert reg.value("not.there") == 0
        assert reg.value("not.there", default=-1) == -1

    def test_names_prefix_filter(self):
        reg = MetricsRegistry()
        reg.counter("hbm.bytes.load")
        reg.counter("hbm.bytes.store")
        reg.counter("cache.hits")
        assert reg.names("hbm.bytes") == ["hbm.bytes.load",
                                          "hbm.bytes.store"]

    def test_contains_and_len(self):
        reg = MetricsRegistry()
        reg.counter("a")
        reg.gauge("b")
        assert "a" in reg and "b" in reg and "c" not in reg
        assert len(reg) == 2

    def test_snapshot_shapes(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(7)
        snap = reg.snapshot()
        assert snap["c"] == 3
        assert snap["g"] == 1.5
        assert snap["h"]["count"] == 1 and snap["h"]["max"] == 7

    def test_flatten_expands_histograms(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        h = reg.histogram("h")
        h.observe(4)
        h.observe(8)
        flat = reg.flatten()
        assert flat["c"] == 2
        assert flat["h.count"] == 2
        assert flat["h.mean"] == pytest.approx(6.0)
        assert flat["h.max"] == 8


class TestTracer:
    def test_disabled_span_is_shared_noop(self):
        tracer = Tracer()
        assert tracer.span("x") is tracer.span("y") is _NULL_CONTEXT
        with tracer.span("x"):
            pass
        assert tracer.spans == []

    def test_global_span_noop_when_disabled(self):
        with span("phase"):
            pass
        assert get_tracer().spans == []

    def test_records_duration(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("work"):
            pass
        (s,) = tracer.spans
        assert s.name == "work"
        assert s.duration_s >= 0.0
        assert s.depth == 0 and s.parent is None

    def test_nesting_depth_and_parent(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans  # completion order
        assert inner.name == "inner"
        assert inner.depth == 1 and inner.parent == "outer"
        assert outer.depth == 0 and outer.parent is None

    def test_span_recorded_on_exception(self):
        tracer = Tracer()
        tracer.enable()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert tracer.find("boom")

    def test_memory_capture(self):
        tracer = Tracer()
        tracer.enable(trace_memory=True)
        try:
            with tracer.span("alloc"):
                _ = [0] * 100_000
        finally:
            tracer.disable()
        (s,) = tracer.spans
        assert s.peak_mem_bytes is not None
        assert s.peak_mem_bytes > 100_000

    def test_find_and_total_seconds(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("a"):
            pass
        with tracer.span("a"):
            pass
        assert len(tracer.find("a")) == 2
        assert tracer.total_seconds("a") >= 0.0
        assert tracer.total_seconds("nope") == 0.0

    def test_enable_tracing_returns_global(self):
        tracer = enable_tracing()
        assert tracer is get_tracer()
        with span("p"):
            pass
        assert [s.name for s in tracer.spans] == ["p"]

    def test_span_dict_roundtrip(self):
        from repro.obs import Span

        s = Span(name="n", start_s=1.0, duration_s=0.5, depth=2,
                 parent="p", peak_mem_bytes=99)
        assert Span.from_dict(s.to_dict()) == s


@pytest.fixture(scope="module")
def spd_small_mod():
    from repro.sparse import grid_laplacian_2d

    return grid_laplacian_2d(7, seed=3)


@pytest.fixture(scope="module")
def sim_report(spd_small_mod):
    return simulate(spd_small_mod, config=SpatulaConfig.tiny(),
                    matrix_name="spd_small")


class TestRegistryBackedReport:
    def test_report_carries_registry(self, sim_report):
        assert sim_report.metrics is not None
        assert len(sim_report.metrics) > 0

    def test_headline_fields_match_registry(self, sim_report):
        reg = sim_report.metrics
        assert sim_report.cycles == reg.value("sim.cycles")
        assert sim_report.n_tasks == reg.value("sim.tasks")
        assert sim_report.cache_hits == reg.value("cache.hits")
        assert sim_report.total_dram_bytes == reg.value("hbm.bytes.total")

    def test_component_namespaces_present(self, sim_report):
        names = set(sim_report.metrics.names())
        for expect in ("cache.hits", "cache.misses", "hbm.bytes.total",
                       "noc.port.stall_cycles", "scheduler.launched",
                       "scheduler.queue_depth", "sim.cycles"):
            assert expect in names, f"missing metric {expect}"

    def test_per_channel_hbm_bytes(self, sim_report):
        cfg = sim_report.config
        per_chan = [
            sim_report.metrics.value(f"hbm.chan{i}.bytes")
            for i in range(cfg.hbm_channels)
        ]
        assert sum(per_chan) > 0

    def test_external_registry_is_used(self, spd_small):
        reg = MetricsRegistry()
        report = simulate(spd_small, config=SpatulaConfig.tiny(),
                          metrics=reg)
        assert report.metrics is reg
        assert reg.value("sim.cycles") == report.cycles


class TestRunArtifact:
    def test_from_run_and_roundtrip(self, sim_report, tmp_path):
        art = RunArtifact.from_run(sim_report)
        assert art.matrix == "spd_small"
        assert art.n == sim_report.n
        path = tmp_path / "run.json"
        art.save(path)
        loaded = RunArtifact.load(path)
        assert loaded.report["cycles"] == sim_report.cycles
        assert loaded.metrics["sim.cycles"] == sim_report.cycles
        assert loaded.config["n_pes"] == sim_report.config.n_pes

    def test_load_rejects_wrong_schema(self, sim_report, tmp_path):
        art = RunArtifact.from_run(sim_report)
        data = art.to_dict()
        data["schema_version"] = 999
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="schema_version"):
            RunArtifact.load(path)

    def test_embeds_spans_from_tracer(self, sim_report):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("pipeline.test"):
            pass
        art = RunArtifact.from_run(sim_report, tracer=tracer)
        assert [s["name"] for s in art.spans] == ["pipeline.test"]

    def test_flat_metrics_has_report_and_registry(self, sim_report):
        flat = RunArtifact.from_run(sim_report).flat_metrics()
        assert flat["report.cycles"] == float(sim_report.cycles)
        assert "cache.hit_rate" in flat
        assert "scheduler.queue_depth.count" in flat  # histogram expanded

    def test_render_artifact_mentions_headlines(self, sim_report):
        text = render_artifact(RunArtifact.from_run(sim_report))
        assert "spd_small" in text
        assert "cycles" in text and "cache.hits" in text


class TestDiff:
    def _artifact(self, sim_report, **metric_overrides):
        art = RunArtifact.from_run(sim_report)
        art.metrics = dict(art.metrics)
        art.metrics.update(metric_overrides)
        return art

    def test_identical_artifacts_no_regression(self, sim_report):
        a = RunArtifact.from_run(sim_report)
        result = diff_artifacts(a, a)
        assert not result.has_regression

    def test_lower_is_better_regression(self, sim_report):
        a = self._artifact(sim_report, **{"cache.misses": 100})
        b = self._artifact(sim_report, **{"cache.misses": 120})
        result = diff_artifacts(a, b, threshold=0.05)
        assert result.has_regression
        names = {d.name for d in result.regressions}
        assert "cache.misses" in names

    def test_higher_is_better_regression(self, sim_report):
        a = self._artifact(sim_report, **{"cache.hit_rate": 0.9})
        b = self._artifact(sim_report, **{"cache.hit_rate": 0.5})
        assert diff_artifacts(a, b).has_regression

    def test_improvement_is_not_regression(self, sim_report):
        a = self._artifact(sim_report, **{"cache.misses": 120})
        b = self._artifact(sim_report, **{"cache.misses": 100})
        assert not diff_artifacts(a, b).has_regression

    def test_threshold_gates_small_moves(self, sim_report):
        a = self._artifact(sim_report, **{"cache.misses": 100})
        b = self._artifact(sim_report, **{"cache.misses": 103})
        assert not diff_artifacts(a, b, threshold=0.05).has_regression
        assert diff_artifacts(a, b, threshold=0.01).has_regression

    def test_unwatched_metric_never_regresses(self, sim_report):
        a = self._artifact(sim_report, **{"scheduler.launched": 10})
        b = self._artifact(sim_report, **{"scheduler.launched": 10_000})
        named = [d for d in diff_artifacts(a, b).deltas
                 if d.name == "scheduler.launched"]
        assert named and not named[0].regressed

    def test_render_diff_marks_regressions(self, sim_report):
        a = self._artifact(sim_report, **{"cache.misses": 100})
        b = self._artifact(sim_report, **{"cache.misses": 200})
        text = render_diff(diff_artifacts(a, b))
        assert "<< REGRESSION" in text
        assert "cache.misses" in text


class TestLogging:
    def test_verbosity_mapping(self):
        assert verbosity_to_level(0) == logging.WARNING
        assert verbosity_to_level(1) == logging.INFO
        assert verbosity_to_level(2) == logging.DEBUG
        assert verbosity_to_level(5) == logging.DEBUG

    def test_setup_logging_idempotent(self):
        logger = setup_logging("info")
        n = len(logger.handlers)
        assert setup_logging("debug") is logger
        assert len(logger.handlers) == n
        assert logger.level == logging.DEBUG
        assert logger.name == "repro"


class TestCLI:
    def test_simulate_writes_artifact(self, tmp_path, capsys):
        out = tmp_path / "run.json"
        assert main(["simulate", "suite:bmwcra_1@0.3",
                     "--metrics", str(out)]) == 0
        art = RunArtifact.load(out)
        from repro.obs.artifact import SCHEMA_VERSION

        assert art.schema_version == SCHEMA_VERSION
        assert art.report["cycles"] > 0
        assert art.attribution is not None
        assert art.attribution["critical_path"]["cp_cycles"] <= \
            art.report["cycles"]
        span_names = {s["name"] for s in art.spans}
        for phase in ("pipeline.load_matrix", "symbolic.etree",
                      "symbolic.supernodes", "plan.build", "sim.run"):
            assert phase in span_names, f"missing span {phase}"
        for metric in ("cache.hits", "noc.port.stall_cycles",
                       "hbm.bytes.total", "scheduler.max_queue_depth"):
            assert metric in art.metrics, f"missing metric {metric}"

    def test_simulate_metrics_with_chrome_trace(self, tmp_path):
        trace_path = tmp_path / "trace.json"
        assert main(["simulate", "suite:bmwcra_1@0.3",
                     "--metrics", str(tmp_path / "m.json"),
                     "--trace", str(trace_path)]) == 0
        data = json.loads(trace_path.read_text())
        pids = {e["pid"] for e in data["traceEvents"]}
        assert pids == {0, 1}  # simulated PEs + host pipeline spans

    def test_report_pretty_prints(self, tmp_path, capsys):
        out = tmp_path / "run.json"
        main(["simulate", "suite:bmwcra_1@0.3", "--metrics", str(out)])
        capsys.readouterr()
        assert main(["report", str(out)]) == 0
        text = capsys.readouterr().out
        assert "cycles" in text and "sim.run" in text

    def test_report_diff_identical_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "run.json"
        main(["simulate", "suite:bmwcra_1@0.3", "--metrics", str(out)])
        assert main(["report", "--diff", str(out), str(out)]) == 0
        assert "no watched metric regressed" in capsys.readouterr().out

    def test_report_diff_regression_exits_nonzero(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        main(["simulate", "suite:bmwcra_1@0.3", "--metrics", str(a)])
        data = json.loads(a.read_text())
        data["report"]["cycles"] = int(data["report"]["cycles"] * 2)
        b = tmp_path / "b.json"
        b.write_text(json.dumps(data))
        assert main(["report", "--diff", str(a), str(b)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_report_diff_requires_two_files(self, tmp_path, capsys):
        out = tmp_path / "run.json"
        main(["simulate", "suite:bmwcra_1@0.3", "--metrics", str(out)])
        capsys.readouterr()
        assert main(["report", "--diff", str(out)]) != 0

    def test_verbose_flag_accepted(self, capsys):
        assert main(["-v", "info", "suite:bmwcra_1@0.3"]) == 0
