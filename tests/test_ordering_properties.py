"""Property-based tests for the ordering registry and local refinement.

Every registered ordering — built-in or plugin — must return a valid
permutation (bijective, int64, correct length) on everything the fuzz
suite can produce, including the degenerate shapes heuristics tend to
trip on (n=1, diagonal-only, disconnected graphs, dense rows).  The
search-based ``local_refine`` additionally must never score worse than
its seed ordering on the fill objective and must be bit-reproducible
for a fixed seed/budget.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ordering import (
    available_orderings,
    fill_reducing_ordering,
    get_ordering,
    local_refine,
    register_ordering,
    score_ordering,
    unregister_ordering,
)
from repro.sparse.csc import CSCMatrix
from repro.verify.generators import build_case, family_names


def assert_valid_permutation(perm, n):
    perm = np.asarray(perm)
    assert perm.shape == (n,), f"shape {perm.shape} != ({n},)"
    assert perm.dtype == np.int64, f"dtype {perm.dtype} != int64"
    assert np.array_equal(np.sort(perm), np.arange(n)), "not a bijection"


def fill_of(matrix, perm):
    return score_ordering(matrix, perm, kind="cholesky"
                          if matrix.is_structurally_symmetric()
                          else "lu").fill


# -- edge-case matrices --------------------------------------------------------


def _diag_only(n):
    return CSCMatrix.from_dense(np.diag(np.arange(1.0, n + 1.0)))


def _disconnected(n_components=3, size=4):
    """Block-diagonal of small dense SPD blocks plus one isolated vertex."""
    n = n_components * size + 1
    dense = np.zeros((n, n))
    rng = np.random.default_rng(0)
    for c in range(n_components):
        lo = c * size
        block = rng.uniform(-1.0, 1.0, (size, size))
        dense[lo:lo + size, lo:lo + size] = block @ block.T + size * np.eye(size)
    dense[-1, -1] = 1.0
    return CSCMatrix.from_dense(dense)


def _dense_row(n=10):
    """Arrow matrix: one vertex adjacent to everything (the AMD dense-
    row-deferral path)."""
    dense = np.eye(n) * n
    dense[0, :] = dense[:, 0] = 1.0
    dense[0, 0] = n
    return CSCMatrix.from_dense(dense)


EDGE_CASES = {
    "n1": CSCMatrix.from_dense(np.array([[2.0]])),
    "diagonal_only": _diag_only(6),
    "disconnected": _disconnected(),
    "dense_row": _dense_row(),
}


@pytest.mark.parametrize("method", available_orderings())
@pytest.mark.parametrize("case", sorted(EDGE_CASES))
def test_edge_cases_yield_valid_permutations(method, case):
    matrix = EDGE_CASES[case]
    perm = fill_reducing_ordering(matrix, method)
    assert_valid_permutation(perm, matrix.n_rows)


@settings(max_examples=30, deadline=None)
@given(family=st.sampled_from(family_names()), seed=st.integers(0, 100))
def test_every_registered_ordering_is_a_valid_permutation(family, seed):
    case = build_case(family, seed, max_n=20)
    for method in available_orderings():
        perm = fill_reducing_ordering(case.matrix, method)
        assert_valid_permutation(perm, case.matrix.n_rows)


# -- registry behaviour --------------------------------------------------------


def test_unknown_ordering_error_lists_registry():
    matrix = EDGE_CASES["dense_row"]
    with pytest.raises(ValueError) as exc:
        fill_reducing_ordering(matrix, "metis")
    for name in available_orderings():
        assert name in str(exc.value)


def test_plugin_registration_round_trip():
    @register_ordering("reversed_natural", description="test plugin")
    def reversed_natural(matrix):
        return np.arange(matrix.n_rows - 1, -1, -1, dtype=np.int64)

    try:
        assert "reversed_natural" in available_orderings()
        matrix = _diag_only(5)
        perm = fill_reducing_ordering(matrix, "reversed_natural")
        assert np.array_equal(perm, [4, 3, 2, 1, 0])
        # The new name shows up in unknown-method errors (no drift).
        with pytest.raises(ValueError, match="reversed_natural"):
            fill_reducing_ordering(matrix, "nope")
        # Duplicate registration is rejected without overwrite=True.
        with pytest.raises(ValueError, match="already registered"):
            register_ordering("reversed_natural")(reversed_natural)
    finally:
        unregister_ordering("reversed_natural")
    assert "reversed_natural" not in available_orderings()


def test_builtins_cannot_be_unregistered():
    with pytest.raises(ValueError, match="built-in"):
        unregister_ordering("amd")


def test_auto_is_a_reserved_name():
    with pytest.raises(ValueError, match="reserved"):
        register_ordering("auto")(lambda m: np.arange(m.n_rows))


def test_capability_metadata():
    assert get_ordering("amd").builtin
    entry = get_ordering("local_refine")
    assert entry.seeded and entry.search
    assert entry.default_params["seed_method"] == "amd"


# -- local_refine guarantees ---------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 50))
def test_local_refine_never_worse_than_seed(seed):
    case = build_case("spd_mesh", seed, max_n=30)
    amd_fill = fill_of(case.matrix, fill_reducing_ordering(case.matrix, "amd"))
    refined = local_refine(case.matrix, seed=seed, budget=12)
    assert_valid_permutation(refined, case.matrix.n_rows)
    assert fill_of(case.matrix, refined) <= amd_fill


@settings(max_examples=10, deadline=None)
@given(family=st.sampled_from(["spd_random", "spd_mesh", "lu_unsym_dd"]),
       seed=st.integers(0, 50))
def test_local_refine_is_bit_reproducible(family, seed):
    case = build_case(family, seed, max_n=20)
    a = local_refine(case.matrix, seed=7, budget=10)
    b = local_refine(case.matrix, seed=7, budget=10)
    assert np.array_equal(a, b)


def test_local_refine_zero_budget_returns_seed():
    matrix = build_case("spd_mesh", 3, max_n=30).matrix
    assert np.array_equal(
        local_refine(matrix, budget=0),
        fill_reducing_ordering(matrix, "amd"),
    )


def test_local_refine_rejects_bad_knobs():
    matrix = _diag_only(4)
    with pytest.raises(ValueError):
        local_refine(matrix, budget=-1)
    with pytest.raises(ValueError):
        local_refine(matrix, window=1)


def test_local_refine_beats_or_matches_amd_on_mesh_family():
    """Acceptance criterion: >= 80% of the fuzz-suite mesh family."""
    seeds = range(10)
    wins = 0
    improved = 0
    for seed in seeds:
        matrix = build_case("spd_mesh", seed, max_n=36).matrix
        amd_fill = fill_of(matrix, fill_reducing_ordering(matrix, "amd"))
        refined_fill = fill_of(matrix, local_refine(matrix, seed=seed,
                                                    budget=40))
        if refined_fill <= amd_fill:
            wins += 1
        if refined_fill < amd_fill:
            improved += 1
    assert wins / len(list(seeds)) >= 0.8
    # Hill-climbing from the AMD seed should find at least one strict
    # improvement somewhere in the family, not just tie everywhere.
    assert improved >= 1


def test_local_refine_custom_seed_method():
    matrix = build_case("spd_mesh", 1, max_n=30).matrix
    rcm_fill = fill_of(matrix, fill_reducing_ordering(matrix, "rcm"))
    refined = local_refine(matrix, seed_method="rcm", seed=0, budget=20)
    assert fill_of(matrix, refined) <= rcm_fill


def test_mesh_family_is_deterministic_and_spd_shaped():
    a = build_case("spd_mesh", 5, max_n=30).matrix
    b = build_case("spd_mesh", 5, max_n=30).matrix
    assert np.array_equal(a.to_dense(), b.to_dense())
    assert a.is_structurally_symmetric()
    assert np.all(np.linalg.eigvalsh(a.to_dense()) > 0)
