"""Figure 5: baseline GFLOP/s on four representative LU matrices."""

from repro.eval import EvalSettings, figure5


def test_figure5_baseline_performance(benchmark):
    # Full-scale matrices: this experiment runs only the symbolic
    # analysis plus the analytic baseline models, so it is cheap, and
    # the structural contrast it demonstrates needs the real sizes.
    full = EvalSettings(scale=1.0)
    rows = benchmark.pedantic(figure5, args=(full,), rounds=1,
                              iterations=1)
    print("\nFigure 5: baseline GFLOP/s (GPU vs CPU)")
    print(f"{'Matrix':<14}{'GPU GFLOP/s':>13}{'CPU GFLOP/s':>13}")
    for r in rows:
        print(f"{r['matrix']:<14}{r['gpu_gflops']:>13.1f}"
              f"{r['cpu_gflops']:>13.1f}")
    by_name = {r["matrix"]: r for r in rows}
    # The paper's headline contrast: the GPU does far better on
    # atmosmodd (large supernodes) than on FullChip (tiny supernodes),
    # where the CPU closes most of the gap.
    assert by_name["atmosmodd"]["gpu_gflops"] \
        > 3 * by_name["FullChip"]["gpu_gflops"]
    gpu_adv_atmos = (by_name["atmosmodd"]["gpu_gflops"]
                     / by_name["atmosmodd"]["cpu_gflops"])
    gpu_adv_chip = (by_name["FullChip"]["gpu_gflops"]
                    / by_name["FullChip"]["cpu_gflops"])
    assert gpu_adv_atmos > gpu_adv_chip
