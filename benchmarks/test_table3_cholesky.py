"""Table 3: sparse Cholesky performance and speedups over GPU/CPU."""

from repro.eval import render_suite_table, table3
from repro.eval.experiments import gmean


def test_table3_cholesky(benchmark, settings, chol_names):
    rows = benchmark.pedantic(table3, args=(settings, chol_names),
                              rounds=1, iterations=1)
    print("\n" + render_suite_table(
        rows, "Table 3: sparse Cholesky (representative subset)"))
    # Paper shape: Spatula wins everywhere; achieved TFLOP/s decreases
    # from the big-front matrices toward the small-front ones.
    assert all(r.speedup_vs_gpu > 1 and r.speedup_vs_cpu > 1 for r in rows)
    assert gmean(r.speedup_vs_gpu for r in rows) > 3
