"""Shared benchmark settings.

Benches regenerate each paper exhibit at ``EvalSettings.quick()`` scale
(suite matrices shrunk ~2.5x linearly) so the full harness finishes in a
few minutes; set REPRO_BENCH_SCALE=1.0 in the environment for full-scale
runs (the numbers recorded in EXPERIMENTS.md).
"""

import os

import pytest

from repro.eval import EvalSettings


def _scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.4"))


@pytest.fixture(scope="session")
def settings():
    return EvalSettings(scale=_scale())


@pytest.fixture(scope="session")
def chol_names():
    """Representative Cholesky subset: top / middle / bottom of Table 3."""
    return ["Serena", "bone010", "bmwcra_1", "af_0_k101", "G3_circuit"]


@pytest.fixture(scope="session")
def lu_names():
    """Representative LU subset: top / middle / bottom of Table 4."""
    return ["atmosmodd", "language", "human_gene1", "FullChip", "rajat31"]
