"""Ablation benches for the design choices DESIGN.md calls out.

Not a paper exhibit per se, but each ablation validates one of the
paper's stated design arguments:

* Section 5.1 — breadth-first emission vs a fixed-dimension order
  ("multiple times slower on small supernodes");
* Section 5.1 — in-order dispatch vs an out-of-order dataflow window
  ("negligible overall performance gains, less than 10% in all cases");
* Section 5.2 — post-order min-heap supernode ordering vs FIFO
  (minimizes the live-data footprint);
* Section 4.3 — task slots: decoupled operand fetch needs more than one
  slot to hide memory latency.
"""

from dataclasses import replace

from repro.arch.sim import SpatulaSim
from repro.eval.experiments import analyze_suite_matrix, _plan_for


def _run(plan, config):
    return SpatulaSim(plan, config).run()


def test_ablations(benchmark, settings):
    base = settings.config
    names = ["bone010", "G3_circuit"]

    def run_all():
        results = {}
        for name in names:
            analyze_suite_matrix(name, settings)
            plan = _plan_for(name, settings)
            results[name] = {
                "base": _run(plan, base),
                "rowmajor": _run(plan, replace(base, order="rowmajor")),
                "dataflow": _run(plan, replace(base, dataflow_window=16)),
                "fifo": _run(plan, replace(base, sn_order="fifo")),
                "one_slot": _run(plan, replace(base, task_slots=1)),
            }
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print("\nAblations (cycles; lower is better)")
    header = f"{'Matrix':<14}{'base':>10}{'rowmajor':>10}{'dataflow':>10}" \
             f"{'fifo':>10}{'1 slot':>10}"
    print(header)
    for name, r in results.items():
        print(f"{name:<14}{r['base'].cycles:>10}{r['rowmajor'].cycles:>10}"
              f"{r['dataflow'].cycles:>10}{r['fifo'].cycles:>10}"
              f"{r['one_slot'].cycles:>10}")
    print("\nPeak live footprint (KB): postorder vs fifo")
    for name, r in results.items():
        print(f"{name:<14}{r['base'].peak_live_front_bytes // 1024:>10}"
              f"{r['fifo'].peak_live_front_bytes // 1024:>10}")

    for name, r in results.items():
        # Section 5.1: breadth-first never loses to the fixed order.
        assert r["base"].cycles <= r["rowmajor"].cycles
        # Section 5.1: out-of-order dispatch gains are small (<10%).
        assert r["dataflow"].cycles >= 0.9 * r["base"].cycles
        # Section 5.2: the post-order heap keeps footprint at or below
        # FIFO's (directional — dynamic interleaving adds a little noise
        # per matrix, so allow a small tolerance).
        assert r["base"].peak_live_front_bytes \
            <= 1.15 * r["fifo"].peak_live_front_bytes
        # Section 4.3: removing decoupling slots cannot speed things up.
        assert r["one_slot"].cycles >= r["base"].cycles
