"""Figure 19: CDFs of concurrently executing supernodes."""

from repro.eval import figure19, render_cdf


def test_figure19_concurrency(benchmark, settings):
    names = ["af_0_k101", "G3_circuit", "FullChip", "rajat31"]
    out = benchmark.pedantic(figure19, args=(settings, names),
                             rounds=1, iterations=1)
    print("\nFigure 19: concurrent-supernode CDFs")
    for name, (levels, cdf) in out.items():
        print(" ", render_cdf(name, levels, cdf, "sn"))
    for name, (levels, cdf) in out.items():
        assert levels.min() >= 1
        assert abs(cdf[-1] - 1.0) < 1e-9
        # The flexible scheduler must actually overlap supernodes
        # somewhere on these small-supernode matrices.
        assert levels.max() >= 2
