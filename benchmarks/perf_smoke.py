#!/usr/bin/env python
"""Performance smoke benchmark for the blocked numeric engine.

Times the three numeric-phase operations — ``factorize`` (cold),
``refactorize`` (warm pattern), and ``solve`` (single vector and a
32-column panel) — on two suite matrices, comparing the blocked
level-scheduled engine against a faithful re-implementation of the
pre-engine baseline (COO-round-trip permutation, per-entry Python front
assembly, per-pivot dense kernels with full trailing updates).

Writes ``BENCH_numeric.json`` with the schema::

    {"schema": 1,
     "matrices": {name: {"n": ..., "kind": ...,
                         "ops": {op: {"seconds": s, "flops_per_s": f}},
                         "speedups": {"refactorize": x, "multi_rhs": x},
                         "max_factor_rel_err": e}},
     "cache": {"hits": ..., "misses": ...}}

Run as ``PYTHONPATH=src python benchmarks/perf_smoke.py``.  Not a pytest
bench: this is the fast CI smoke artifact (non-gating).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.numeric.cache import analysis_cache
from repro.numeric.solver import SparseSolver
from repro.obs.metrics import global_registry
from repro.ordering.pivoting import apply_static_pivoting
from repro.sparse.suite import get_matrix
from repro.symbolic.analyze import symbolic_factorize
from repro.symbolic.assembly import (
    initial_front_values,
    initial_front_values_lu,
)
from repro.symbolic.csq import CSQMatrix

PANEL_WIDTH = 32


# -- the pre-engine baseline, reproduced verbatim ------------------------------
# Per-pivot kernels with full trailing-square updates, dict-of-CSQ
# extend-add, and per-entry Python front assembly: the numeric path this
# engine replaced.  Kept here (not in src/) purely as the speedup baseline.


def _legacy_partial_cholesky(f: np.ndarray, n_pivots: int) -> None:
    for i in range(n_pivots):
        pivot = f[i, i]
        if pivot <= 0.0 or not np.isfinite(pivot):
            raise ValueError(f"non-SPD pivot {pivot} at front position {i}")
        f[i, i] = np.sqrt(pivot)
        if i + 1 < f.shape[0]:
            f[i + 1:, i] /= f[i, i]
            f[i + 1:, i + 1:] -= np.outer(f[i + 1:, i], f[i + 1:, i])


def _legacy_partial_lu(f: np.ndarray, n_pivots: int, perturb: float) -> None:
    for k in range(n_pivots):
        pivot = f[k, k]
        if abs(pivot) < perturb:
            pivot = perturb if pivot >= 0 else -perturb
            f[k, k] = pivot
        if pivot == 0.0:
            raise ValueError(f"zero pivot at front position {k}")
        if k + 1 < f.shape[0]:
            f[k + 1:, k] /= f[k, k]
            f[k + 1:, k + 1:] -= np.outer(f[k + 1:, k], f[k, k + 1:])


def legacy_cholesky(matrix, symbolic):
    permuted = matrix.permuted(symbolic.perm)
    tree = symbolic.tree
    updates: dict[int, CSQMatrix] = {}
    columns = []
    for sn in tree.supernodes:
        front = CSQMatrix(sn.rows, initial_front_values(permuted, sn))
        for child in sn.children:
            front.extend_add(updates.pop(child))
        _legacy_partial_cholesky(front.values, sn.n_cols)
        columns.append((sn.rows.copy(),
                        np.tril(front.values)[:, : sn.n_cols].copy()))
        if sn.parent >= 0 and sn.n_update_rows > 0:
            update = front.submatrix(sn.n_cols)
            update.values = np.tril(update.values)
            update.values += np.tril(update.values, -1).T
            updates[sn.index] = update
    return columns


def legacy_lu(matrix, symbolic):
    permuted = matrix.permuted(symbolic.perm)
    permuted_csr = permuted.transpose()
    amax = float(np.abs(permuted.data).max()) if permuted.nnz else 1.0
    perturb = np.sqrt(np.finfo(np.float64).eps) * amax
    tree = symbolic.tree
    updates: dict[int, CSQMatrix] = {}
    fronts = []
    for sn in tree.supernodes:
        front = CSQMatrix(
            sn.rows, initial_front_values_lu(permuted, permuted_csr, sn))
        for child in sn.children:
            front.extend_add(updates.pop(child))
        _legacy_partial_lu(front.values, sn.n_cols, perturb)
        fronts.append((sn.rows.copy(),
                       np.tril(front.values)[:, : sn.n_cols].copy(),
                       np.triu(front.values)[: sn.n_cols, :].copy()))
        if sn.parent >= 0 and sn.n_update_rows > 0:
            updates[sn.index] = front.submatrix(sn.n_cols)
    return fronts


# -- measurement ---------------------------------------------------------------


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _rel_err(a: np.ndarray, b: np.ndarray) -> float:
    scale = float(np.max(np.abs(b))) or 1.0
    return float(np.max(np.abs(a - b))) / scale


def bench_matrix(name: str, kind: str, scale: float, repeats: int) -> dict:
    matrix = get_matrix(name, scale=scale)
    work = matrix
    if kind == "lu":
        work, _ = apply_static_pivoting(matrix)
    symbolic = symbolic_factorize(work, kind=kind)
    flops = float(symbolic.flops)
    n = matrix.n_rows
    print(f"== {name}@{scale} [{kind}] n={n} nnz={matrix.nnz} "
          f"({flops / 1e6:.1f} MFLOP)")

    ops: dict[str, dict] = {}

    # Cold factorize (includes building the pattern-cached scatter maps).
    t0 = time.perf_counter()
    solver = SparseSolver(matrix, kind=kind, use_cache=False)
    ops["factorize_cold"] = {"seconds": time.perf_counter() - t0,
                             "flops_per_s": None}

    # Warm refactorize: same pattern, scaled values.
    refreshed = type(matrix)(
        matrix.n_rows, matrix.n_cols, matrix.indptr.copy(),
        matrix.indices.copy(), matrix.data * 1.0)
    t_new = _best_of(lambda: solver.refactorize(refreshed), repeats)
    ops["refactorize"] = {"seconds": t_new, "flops_per_s": flops / t_new}

    # The pre-engine baseline of the same refactorization.
    legacy = legacy_cholesky if kind == "cholesky" else legacy_lu
    t0 = time.perf_counter()
    legacy_factor = legacy(work, symbolic)
    t_old = time.perf_counter() - t0
    ops["refactorize_legacy"] = {"seconds": t_old,
                                 "flops_per_s": flops / t_old}

    # The two implementations must agree to ~1e-10 relative.
    blocked = (solver._chol.columns if kind == "cholesky"
               else solver._lu.fronts)
    err = max(
        max(_rel_err(old, new) for old, new in zip(legs[1:], news[1:]))
        for legs, news in zip(legacy_factor, blocked)
    )

    rng = np.random.default_rng(0)
    b1 = rng.standard_normal(n)
    t_solve = _best_of(lambda: solver.solve(b1), repeats)
    solve_flops = 4.0 * solver.factor_nnz
    ops["solve"] = {"seconds": t_solve,
                    "flops_per_s": solve_flops / t_solve}

    bk = rng.standard_normal((n, PANEL_WIDTH))
    t_panel = _best_of(lambda: solver.solve(bk), repeats)
    ops[f"solve_panel_{PANEL_WIDTH}"] = {
        "seconds": t_panel,
        "flops_per_s": PANEL_WIDTH * solve_flops / t_panel,
    }
    t_cols = _best_of(
        lambda: [solver.solve(bk[:, j]) for j in range(PANEL_WIDTH)], 1)
    ops[f"solve_percolumn_{PANEL_WIDTH}"] = {
        "seconds": t_cols,
        "flops_per_s": PANEL_WIDTH * solve_flops / t_cols,
    }

    speedups = {
        "refactorize": t_old / t_new,
        "multi_rhs": t_cols / t_panel,
    }
    for op, rec in ops.items():
        rate = rec["flops_per_s"]
        rate_s = f"{rate / 1e9:8.3f} GFLOP/s" if rate else " " * 16
        print(f"  {op:<24}{rec['seconds'] * 1e3:>10.1f} ms  {rate_s}")
    print(f"  refactorize speedup {speedups['refactorize']:.1f}x, "
          f"multi-RHS (k={PANEL_WIDTH}) speedup "
          f"{speedups['multi_rhs']:.1f}x, "
          f"factor rel err {err:.1e}")
    return {"n": n, "kind": kind, "scale": scale, "ops": ops,
            "speedups": speedups, "max_factor_rel_err": err}


def bench_schedulers(schedulers: list[str], workers: int, scale: float,
                     repeats: int, history_dir: str | None) -> dict:
    """Sweep the numeric-phase schedulers on a wide-but-uneven tree.

    ``power_law_spd`` produces the profile the DAG scheduler targets:
    many runnable supernodes per level with skewed sizes, so the level
    barrier serializes on its slowest member.  Records
    ``numeric.speedup.{dag,procs}`` (warm refactorize vs the level
    baseline) plus each scheduler's idle-seconds attribution; with
    ``history_dir`` set, appends a run artifact to the history store so
    the trend gate watches the speedups.
    """
    from repro.numeric.cholesky import multifrontal_cholesky
    from repro.numeric.engine import last_factor_attribution
    from repro.obs.artifact import RunArtifact
    from repro.obs.history import HistoryStore
    from repro.sparse import power_law_spd

    n = max(64, int(1200 * scale))
    matrix = power_law_spd(n, seed=7)
    symbolic = symbolic_factorize(matrix, kind="cholesky")
    # Warm the pattern cache so the sweep times pure numeric work.
    multifrontal_cholesky(matrix, symbolic, workers=1)
    widths = [len(lvl) for lvl in symbolic._numeric_ctx.levels]
    print(f"== scheduler sweep [power_law_spd n={n}] workers={workers}: "
          f"{symbolic.n_supernodes} supernodes, {len(widths)} levels, "
          f"max width {max(widths)}")

    sweep: dict[str, dict] = {}
    for sched in schedulers:
        seconds = _best_of(
            lambda: multifrontal_cholesky(
                matrix, symbolic, workers=workers, scheduler=sched),
            repeats,
        )
        att = last_factor_attribution() or {}
        schedule = att.get("schedule", {})
        sweep[sched] = {
            "seconds": seconds,
            "idle_s": schedule.get("idle_s", 0.0),
            "dispatch_latency_ms":
                schedule.get("dispatch_latency_ms", {}).get("mean", 0.0),
            "ready_depth_mean":
                schedule.get("ready_depth", {}).get("mean", 0.0),
            "n_subtrees": schedule.get("n_subtrees", 0),
            "attribution": att,
        }

    base = sweep.get("level", {}).get("seconds")
    metrics: dict[str, float] = {}
    reg = global_registry()
    for sched, rec in sweep.items():
        if base and sched != "level":
            speedup = base / rec["seconds"]
            rec["speedup_vs_level"] = speedup
            metrics[f"numeric.speedup.{sched}"] = speedup
            reg.gauge(f"numeric.speedup.{sched}").set(speedup)
        idle = rec["idle_s"]
        print(f"  {sched:<8}{rec['seconds'] * 1e3:>10.1f} ms  "
              f"idle {idle * 1e3:8.1f} ms"
              + (f"  {rec['speedup_vs_level']:.2f}x vs level"
                 if "speedup_vs_level" in rec else "  (baseline)"))

    result = {"matrix": f"power_law_spd:{n}", "workers": workers,
              "schedulers": sweep, "metrics": metrics}
    if history_dir:
        artifact = RunArtifact(
            matrix=f"power_law_spd:{n}", kind="cholesky", n=n,
            config={"bench": "scheduler_sweep", "workers": workers,
                    "scale": scale},
            report={},
            metrics={**metrics,
                     **{f"numeric.sched.{s}.idle_s": r["idle_s"]
                        for s, r in sweep.items()}},
            attribution={"numeric_sweep": {
                s: r["attribution"] for s, r in sweep.items()}},
            created_at=time.strftime("%Y-%m-%dT%H:%M:%S"),
        )
        entry = HistoryStore(history_dir).add(artifact)
        print(f"  recorded sweep into history store {history_dir} "
              f"(key {entry.key})")
    return result


def bench_cache(name: str, kind: str, scale: float) -> dict:
    """Demonstrate the analysis cache: second solver skips the analysis."""
    matrix = get_matrix(name, scale=scale)
    analysis_cache().clear()
    reg = global_registry()

    def counters():
        snap = reg.snapshot()
        return (snap.get("numeric.analysis_cache.hits", 0),
                snap.get("numeric.analysis_cache.misses", 0))

    h0, m0 = counters()
    t0 = time.perf_counter()
    SparseSolver(matrix, kind=kind)
    t_cold = time.perf_counter() - t0
    t0 = time.perf_counter()
    SparseSolver(matrix, kind=kind)
    t_warm = time.perf_counter() - t0
    h1, m1 = counters()
    result = {
        "matrix": name, "hits": h1 - h0, "misses": m1 - m0,
        "cold_seconds": t_cold, "warm_seconds": t_warm,
    }
    print(f"== analysis cache [{name}]: cold {t_cold * 1e3:.1f} ms, "
          f"warm {t_warm * 1e3:.1f} ms "
          f"({result['hits']} hit(s), {result['misses']} miss(es))")
    return result


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_numeric.json")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="suite-matrix scale factor")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats (best-of)")
    parser.add_argument("--scheduler", default=None, metavar="LIST",
                        help="comma-separated schedulers to sweep "
                             "(e.g. level,dag,procs); records "
                             "numeric.speedup.* vs the level baseline")
    parser.add_argument("--sched-workers", type=int, default=4,
                        help="worker count for the --scheduler sweep")
    parser.add_argument("--sched-only", action="store_true",
                        help="run only the --scheduler sweep, skipping "
                             "the baseline benches")
    parser.add_argument("--history", metavar="DIR", default=None,
                        help="append the --scheduler sweep artifact to "
                             "this repro.obs.history store")
    parser.add_argument("--telemetry-dir", metavar="DIR", default=None,
                        help="record run-scoped telemetry of the bench "
                             "(JSONL streams + merged trace/HTML)")
    parser.add_argument("--profile", action="store_true",
                        help="wall-clock profiling (top table + "
                             "flamegraph next to the telemetry streams)")
    parser.add_argument("--profile-mode", default="both",
                        help="which profiler(s) --profile runs")
    args = parser.parse_args()

    # Same telemetry/profiling lifecycle as the CLI verbs: when the
    # flags are off this is a no-op and the timings below are unscathed.
    from repro.cli import ObsSession
    from repro.obs.spans import enable_tracing

    session = ObsSession(args, "perf_smoke")
    if session.enabled:
        enable_tracing().reset()
    session.start()

    # Serena: the heaviest Cholesky suite factorization (3-D grid, real
    # fill).  atmosmodd: an LU matrix with comparable supernode structure
    # (FullChip-style circuit matrices have near-empty supernodes, which
    # benchmarks Python dispatch overhead rather than the kernels).
    matrices = [("Serena", "cholesky"), ("atmosmodd", "lu")]
    results = {"schema": 1, "matrices": {}, "panel_width": PANEL_WIDTH}
    if not args.sched_only:
        for name, kind in matrices:
            results["matrices"][name] = bench_matrix(
                name, kind, args.scale, args.repeats)
        results["cache"] = bench_cache(matrices[0][0], matrices[0][1],
                                       args.scale)
    if args.scheduler:
        schedulers = [s.strip() for s in args.scheduler.split(",")
                      if s.strip()]
        results["scheduler_sweep"] = bench_schedulers(
            schedulers, args.sched_workers, args.scale, args.repeats,
            args.history)
    session.finish()

    if results["matrices"]:
        largest = max(results["matrices"].items(),
                      key=lambda kv: kv[1]["n"])
        results["summary"] = {
            "largest_matrix": largest[0],
            "refactorize_speedup": largest[1]["speedups"]["refactorize"],
            "multi_rhs_speedup": largest[1]["speedups"]["multi_rhs"],
            "cache_hits": results["cache"]["hits"],
        }
        s = results["summary"]
        print(f"\nlargest matrix {s['largest_matrix']}: "
              f"refactorize {s['refactorize_speedup']:.1f}x vs per-pivot, "
              f"multi-RHS {s['multi_rhs_speedup']:.1f}x vs per-column, "
              f"cache hits {s['cache_hits']}")
    Path(args.output).write_text(json.dumps(results, indent=1))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
