"""Figure 17: DRAM traffic breakdown and average bandwidth."""

from repro.eval import figure17, render_traffic, table3


def test_figure17_data_movement(benchmark, settings, chol_names):
    rows = benchmark.pedantic(table3, args=(settings, chol_names),
                              rounds=1, iterations=1)
    entries = figure17(rows)
    print("\n" + render_traffic(entries, "Figure 17 (Cholesky)"))
    cfg = settings.config
    peak_gbs = cfg.hbm_phys * cfg.hbm_gbs_per_phy
    for e in entries:
        assert 0 < e["avg_gbs"] <= peak_gbs
        fractions = [e[k] for k in ("comp_load", "gather_load",
                                    "factor_load", "store_spill",
                                    "store_result")]
        assert abs(sum(fractions) - 1.0) < 1e-6
        # Spills are re-read roughly once (paper: ~1:1 ratio), so
        # non-compulsory loads shouldn't wildly exceed spills.
        noncomp = e["gather_load"] + e["factor_load"]
        assert noncomp <= 3 * e["store_spill"] + 0.05
