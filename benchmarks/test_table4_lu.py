"""Table 4: sparse LU performance and speedups over GPU/CPU."""

from repro.eval import render_suite_table, table4
from repro.eval.experiments import gmean


def test_table4_lu(benchmark, settings, lu_names):
    rows = benchmark.pedantic(table4, args=(settings, lu_names),
                              rounds=1, iterations=1)
    print("\n" + render_suite_table(
        rows, "Table 4: sparse LU (representative subset)"))
    assert all(r.speedup_vs_gpu > 1 and r.speedup_vs_cpu > 1 for r in rows)
    assert gmean(r.speedup_vs_cpu for r in rows) > 3
