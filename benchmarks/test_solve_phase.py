"""Solve-phase bench: the Figure 2 amortization story.

Not a numbered exhibit, but the paper's framing ("Numeric Factorization
(Slow) ... Triangular Solve (fast)") made quantitative: one factorization
on Spatula vs one forward+backward triangular solve pass on the same
machine.
"""

from repro.arch.sim import SpatulaSim
from repro.arch.solve import simulate_solve
from repro.eval.experiments import _plan_for, analyze_suite_matrix


def test_solve_phase_amortization(benchmark, settings, chol_names):
    def run():
        rows = []
        for name in chol_names:
            analyze_suite_matrix(name, settings)
            plan = _plan_for(name, settings)
            factor = SpatulaSim(plan, settings.config).run()
            solve = simulate_solve(plan, settings.config)
            rows.append((name, factor, solve))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nFactorization vs triangular solve (cycles)")
    print(f"{'Matrix':<14}{'factor':>10}{'solve':>10}{'ratio':>8}"
          f"{'solve GB/s':>12}")
    for name, factor, solve in rows:
        print(f"{name:<14}{factor.cycles:>10}{solve.cycles:>10}"
              f"{factor.cycles / solve.cycles:>8.1f}"
              f"{solve.avg_bandwidth_gbs:>12.0f}")
    for _name, factor, solve in rows:
        # The Figure 2 premise: solving is cheap relative to factoring.
        assert solve.cycles < factor.cycles
