"""Table 5: STRUMPACK-style GPU model across V100 / A100 / H100."""

from repro.eval import table5


def test_table5_gpu_generations(benchmark, settings, lu_names):
    rows = benchmark.pedantic(table5, args=(settings, lu_names),
                              rounds=1, iterations=1)
    print("\nTable 5: baseline GPU generations (LU subset)")
    print(f"{'GPU':<8}{'gmean GFLOP/s':>15}{'gmean util %':>14}")
    for r in rows:
        print(f"{r['gpu']:<8}{r['gmean_gflops']:>15.1f}"
              f"{r['gmean_util_pct']:>13.2f}%")
    v100, a100, h100 = rows
    # The paper's findings: newer GPUs are faster in absolute terms but
    # H100 has the worst utilization of the three.
    assert a100["gmean_gflops"] >= v100["gmean_gflops"]
    assert h100["gmean_util_pct"] < v100["gmean_util_pct"]
