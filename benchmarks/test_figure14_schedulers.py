"""Figure 14: scheduler policy comparison (Inter / Intra / Intra+Inter)."""

from repro.eval import figure14


def test_figure14_scheduling_policies(benchmark, settings):
    names = ["Emilia_923", "boneS10", "bmwcra_1", "G3_circuit"]
    rows = benchmark.pedantic(figure14, args=(settings, names),
                              rounds=1, iterations=1)
    print("\nFigure 14: achieved GFLOP/s per scheduling policy")
    print(f"{'Matrix':<14}{'inter':>10}{'intra':>10}{'intra+inter':>13}")
    for r in rows:
        print(f"{r['matrix']:<14}{r['inter']:>10.1f}{r['intra']:>10.1f}"
              f"{r['intra+inter']:>13.1f}")
    for r in rows:
        # The paper's point: the combined policy dominates both.
        assert r["intra+inter"] >= 0.99 * r["inter"]
        assert r["intra+inter"] >= 0.99 * r["intra"]
    # And inter-only is terrible on big-supernode matrices.
    emilia = rows[0]
    assert emilia["intra+inter"] > 1.5 * emilia["inter"]
