"""Figure 20: design-space exploration (speedup vs area)."""

from repro.eval import figure20, render_dse


def test_figure20_design_space(benchmark, settings):
    sweep = [
        (8, 16, 4.0, 1),
        (16, 16, 8.0, 1),
        (32, 16, 16.0, 2),   # selected (Table 2)
        (64, 16, 16.0, 2),
        (32, 8, 16.0, 2),
    ]
    names = ["bone010", "bmwcra_1"]
    points = benchmark.pedantic(
        figure20, kwargs={"settings": settings, "names": names,
                          "sweep": sweep},
        rounds=1, iterations=1,
    )
    print("\n" + render_dse(points, "Figure 20: area vs gmean speedup"))
    by_pes = {(p["n_pes"], p["tile"]): p for p in points}
    # Scaling shape: bigger configurations are at least as fast.
    assert by_pes[(64, 16)]["gmean_speedup"] \
        >= by_pes[(8, 16)]["gmean_speedup"]
    # And area grows monotonically with PE count.
    assert by_pes[(64, 16)]["area_mm2"] > by_pes[(32, 16)]["area_mm2"] \
        > by_pes[(8, 16)]["area_mm2"]
