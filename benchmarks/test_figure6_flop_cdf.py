"""Figure 6: CDF of FLOPs by supernode size for two extreme matrices."""

import numpy as np

from repro.eval import EvalSettings, figure6, render_cdf


def test_figure6_flop_cdfs(benchmark):
    # Full scale: symbolic-only, and the supernode-size contrast is the
    # entire point of the figure.
    full = EvalSettings(scale=1.0)
    out = benchmark.pedantic(figure6, args=(full,), rounds=1,
                             iterations=1)
    print("\nFigure 6: CDF of FLOPs by supernode size")
    for name, (sizes, cdf) in out.items():
        print(" ", render_cdf(name, sizes, cdf, "size"))
    atmos_sizes, atmos_cdf = out["atmosmodd"]
    chip_sizes, chip_cdf = out["FullChip"]
    # Paper shape: atmosmodd's FLOPs concentrate in much larger
    # supernodes than FullChip's.
    def median_size(sizes, cdf):
        return sizes[int(np.searchsorted(cdf, 0.5))]
    assert median_size(atmos_sizes, atmos_cdf) \
        > median_size(chip_sizes, chip_cdf)
