"""Figure 16: PE cycle breakdown by task type."""

from repro.eval import figure16, render_cycle_breakdown, table3, table4


def test_figure16_cycle_breakdown(benchmark, settings, chol_names, lu_names):
    def run():
        return (table3(settings, chol_names), table4(settings, lu_names))

    chol, lu = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + render_cycle_breakdown(figure16(chol),
                                        "Figure 16 (Cholesky)"))
    print(render_cycle_breakdown(figure16(lu), "Figure 16 (LU)"))
    for rows in (chol, lu):
        for entry in figure16(rows):
            # dgemm must be the dominant compute task type, as in the
            # paper, and the breakdown must be a valid partition.
            compute = {k: v for k, v in entry.items() if k != "matrix"}
            assert abs(sum(compute.values()) - 1.0) < 1e-6
            assert entry["dgemm"] >= entry["tsolve"]
    for entry in figure16(chol):
        assert entry["dlu"] == 0.0
    for entry in figure16(lu):
        assert entry["dchol"] == 0.0
