"""Table 2: Spatula configuration and area breakdown."""

from repro.arch.config import SpatulaConfig
from repro.eval import table2


def test_table2_area(benchmark, settings):
    areas = benchmark.pedantic(table2, args=(settings,), rounds=1,
                               iterations=1)
    cfg = SpatulaConfig.paper()
    print("\nTable 2: Spatula configuration and area")
    print(f"  PEs: {cfg.n_pes} x {cfg.tile}x{cfg.tile} systolic @ "
          f"{cfg.freq_ghz} GHz -> peak {cfg.peak_tflops:.3f} TFLOP/s")
    print(f"  Cache: {cfg.cache_mb:.0f} MB, {cfg.cache_banks} banks, "
          f"{cfg.cache_ways}-way, {cfg.tile_bytes} B lines")
    print(f"  HBM: {cfg.hbm_phys} PHYs "
          f"({cfg.hbm_phys * cfg.hbm_gbs_per_phy:.0f} GB/s)")
    for part, mm2 in areas.items():
        print(f"  {part:<12} {mm2:7.1f} mm^2")
    assert abs(areas["Total"] - 107.7) < 0.5  # the paper's total
