"""Figure 18: power breakdown by component."""

from repro.eval import figure18, render_power, table3, table4


def test_figure18_power(benchmark, settings, chol_names, lu_names):
    def run():
        return table3(settings, chol_names) + table4(settings, lu_names)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    entries = figure18(rows)
    print("\n" + render_power(entries, "Figure 18: power breakdown"))
    for e in entries:
        assert 0 < e["Total"] < 250  # same ballpark as the paper's 146 W
        assert e["PEs"] > 0 and e["HBM"] > 0
