"""Figure 7: GPU dense LU performance across matrix sizes."""

import numpy as np

from repro.eval import figure7


def test_figure7_dense_curve(benchmark):
    sizes, curve = benchmark.pedantic(figure7, rounds=1, iterations=1)
    print("\nFigure 7: GPU dense LU GFLOP/s vs size")
    for i in range(0, len(sizes), len(sizes) // 8):
        bar = "#" * int(40 * curve[i] / curve.max())
        print(f"  n={sizes[i]:>6}  {curve[i]:>7.0f} GFLOP/s  {bar}")
    # Paper shape: flattens around 20000, linear below 10000.
    assert curve[np.searchsorted(sizes, 20000)] == curve.max()
    i5k = np.searchsorted(sizes, 5000)
    i10k = np.searchsorted(sizes, 10000)
    assert abs(curve[i10k] / curve[i5k] - 2.0) < 0.2
